#include "src/serving/frontend.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace unimatch::serving {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

// One (kind-family, top_k) slice of a micro-batch, executed as a single
// batched MultiSearch. IR requests query the item index; UT and audience
// requests both query the user index, so they share a group when their
// top_k matches. Held by shared_ptr: help-first shard helpers may wake
// after the group has completed and must still find the claim counters
// alive.
struct ServingFrontend::GroupExec {
  std::shared_ptr<std::vector<Pending>> batch;
  std::shared_ptr<const EngineSnapshot> snapshot;
  bool ir = false;  // true: item index (IR); false: user index (UT/audience)
  int top_k = 0;
  std::vector<size_t> slots;  // batch positions, in arrival order
  std::vector<int64_t> ids;   // query ids, parallel to slots
  int64_t shard_size = 0;
  int64_t num_shards = 0;
  std::atomic<int64_t> next_shard{0};   // claim counter
  std::atomic<int64_t> shards_done{0};  // completion counter
};

const char* RequestKindToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kRecommendItems:
      return "recommend_items";
    case RequestKind::kTargetUsers:
      return "target_users";
    case RequestKind::kBuildAudience:
      return "build_audience";
  }
  return "unknown";
}

ServingFrontend::ServingFrontend(FrontendConfig config,
                                 SnapshotPublisher* publisher)
    : config_(config),
      publisher_(publisher),
      exec_pool_(config.num_threads),
      batcher_pool_(1) {
  UM_CHECK(publisher_ != nullptr) << "frontend needs a SnapshotPublisher";
  UM_CHECK_GT(config_.max_queue_depth, 0);
  UM_CHECK_GT(config_.max_batch, 0);
  UM_CHECK_GE(config_.batch_window_us, 0);
  UM_CHECK_GT(config_.max_inflight_batches, 0);
  auto* registry = obs::MetricRegistry::Global();
  UM_CHECK_GT(config_.min_group_shard, 0);
  batch_occupancy_ = registry->GetHistogram(
      "serving.frontend.batch.occupancy", "requests",
      "requests coalesced per micro-batch",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  exec_group_size_ = registry->GetHistogram(
      "serving.frontend.batch.exec_group.size", "requests",
      "requests answered by one grouped MultiSearch",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
  queue_wait_ms_ = registry->GetHistogram(
      "serving.frontend.stage.queue.ms", "ms",
      "admission-to-batch-dispatch wait per request");
  execute_ms_ = registry->GetHistogram(
      "serving.frontend.stage.execute.ms", "ms",
      "score + ANN execution latency per batch");
  request_ms_ = registry->GetHistogram(
      "serving.frontend.request.ms", "ms",
      "end-to-end latency per answered request");
  batcher_pool_.Schedule([this] { BatcherLoop(); });
}

ServingFrontend::~ServingFrontend() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  batcher_pool_.Wait();  // batcher exits only once the queue is empty
  exec_pool_.Wait();     // every dispatched batch has answered
}

std::future<Response> ServingFrontend::Submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  bool shutting_down = false;
  {
    MutexLock lock(&mu_);
    if (!stopping_ &&
        queue_.size() < static_cast<size_t>(config_.max_queue_depth)) {
      ++admitted_;
      queue_.push_back(
          Pending{request, std::move(promise), Clock::now()});
      UM_GAUGE_SET("serving.frontend.queue.depth",
                   static_cast<double>(queue_.size()));
      UM_COUNTER_INC("serving.frontend.admitted");
      queue_cv_.NotifyOne();
      return future;
    }
    shutting_down = stopping_;
    ++shed_;
  }
  UM_COUNTER_INC("serving.frontend.shed");
  Response response;
  response.status = Status::Overloaded(
      shutting_down ? "frontend is shutting down"
                    : "admission queue full; retry with backoff");
  promise.set_value(std::move(response));
  return future;
}

void ServingFrontend::Drain() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || inflight_batches_ > 0) state_cv_.Wait(mu_);
}

int64_t ServingFrontend::admitted() const {
  MutexLock lock(&mu_);
  return admitted_;
}

int64_t ServingFrontend::shed() const {
  MutexLock lock(&mu_);
  return shed_;
}

int64_t ServingFrontend::completed() const {
  MutexLock lock(&mu_);
  return completed_;
}

void ServingFrontend::BatcherLoop() {
  const auto window = std::chrono::microseconds(config_.batch_window_us);
  // Explicit Lock/Unlock (not MutexLock): the loop drops the lock around
  // batch dispatch and reacquires for the next iteration, and the
  // thread-safety analysis checks the hold state is consistent at every
  // join point. Wait predicates are re-checked in inline loops so the
  // guarded reads are visibly under the lock.
  mu_.Lock();
  for (;;) {
    while (queue_.empty() && !stopping_) queue_cv_.Wait(mu_);
    if (queue_.empty()) {
      if (stopping_) {
        mu_.Unlock();
        return;
      }
      continue;
    }
    // Coalesce: flush at the size budget, the oldest request's window
    // deadline, or shutdown — whichever comes first.
    const auto deadline = queue_.front().enqueued_at + window;
    while (queue_.size() < static_cast<size_t>(config_.max_batch) &&
           !stopping_ && Clock::now() < deadline) {
      queue_cv_.WaitUntil(mu_, deadline);
    }
    const bool flush_full =
        queue_.size() >= static_cast<size_t>(config_.max_batch);
    // Backpressure: hold the batch until an executor slot frees up. The
    // queue keeps absorbing arrivals meanwhile and sheds past its bound.
    while (inflight_batches_ >= config_.max_inflight_batches) {
      state_cv_.Wait(mu_);
    }
    auto batch = std::make_shared<std::vector<Pending>>();
    const size_t take =
        std::min(queue_.size(), static_cast<size_t>(config_.max_batch));
    batch->reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++inflight_batches_;
    UM_GAUGE_SET("serving.frontend.queue.depth",
                 static_cast<double>(queue_.size()));
    mu_.Unlock();

    if (flush_full) {
      UM_COUNTER_INC("serving.frontend.batch.flush_full");
    } else {
      UM_COUNTER_INC("serving.frontend.batch.flush_window");
    }
    if (obs::MetricsEnabled()) {
      batch_occupancy_->Observe(static_cast<double>(batch->size()));
    }
    // Pin once per batch: every request in it is served by one coherent
    // model generation, and a concurrent Publish only affects later
    // batches.
    std::shared_ptr<const EngineSnapshot> snapshot = publisher_->Current();
    exec_pool_.Schedule(
        [this, batch = std::move(batch), snapshot = std::move(snapshot)] {
          ExecuteBatch(batch, snapshot);
        });

    mu_.Lock();
  }
}

void ServingFrontend::ExecuteBatch(
    std::shared_ptr<std::vector<Pending>> batch,
    std::shared_ptr<const EngineSnapshot> snapshot) {
  const auto start = Clock::now();
  if (obs::MetricsEnabled()) {
    for (const Pending& pending : *batch) {
      queue_wait_ms_->Observe(MillisSince(pending.enqueued_at, start));
    }
  }
  if (snapshot == nullptr) {
    for (Pending& pending : *batch) {
      Response response;
      response.status =
          Status::FailedPrecondition("no engine snapshot published");
      FinishRequest(&pending, std::move(response));
    }
  } else {
    // Group the batch by (kind-family, top_k): every request in a group is
    // answered by one batched MultiSearch against the same index with the
    // same k. A linear scan suffices — batches hold at most max_batch
    // requests and real traffic concentrates on a handful of (kind, k)
    // shapes.
    std::vector<std::shared_ptr<GroupExec>> groups;
    for (size_t i = 0; i < batch->size(); ++i) {
      const Request& r = (*batch)[i].request;
      const bool ir = r.kind == RequestKind::kRecommendItems;
      GroupExec* group = nullptr;
      for (const auto& candidate : groups) {
        if (candidate->ir == ir && candidate->top_k == r.top_k) {
          group = candidate.get();
          break;
        }
      }
      if (group == nullptr) {
        groups.push_back(std::make_shared<GroupExec>());
        group = groups.back().get();
        group->batch = batch;
        group->snapshot = snapshot;
        group->ir = ir;
        group->top_k = r.top_k;
      }
      group->slots.push_back(i);
      group->ids.push_back(r.id);
    }
    for (auto& group : groups) ExecuteGroup(std::move(group));
  }
  if (obs::MetricsEnabled()) {
    execute_ms_->Observe(MillisSince(start, Clock::now()));
  }
  {
    MutexLock lock(&mu_);
    --inflight_batches_;
    completed_ += static_cast<int64_t>(batch->size());
  }
  state_cv_.NotifyAll();
}

void ServingFrontend::ExecuteGroup(std::shared_ptr<GroupExec> group) {
  const int64_t nq = static_cast<int64_t>(group->slots.size());
  UM_COUNTER_INC("serving.frontend.batch.exec_groups");
  if (obs::MetricsEnabled()) {
    exec_group_size_->Observe(static_cast<double>(nq));
  }
  // Shard sizing: split only when every shard gets at least
  // min_group_shard queries, and never into more shards than pool
  // threads.
  const int threads = exec_pool_.num_threads();
  int64_t shard_size = nq;
  if (threads > 1) {
    shard_size = std::max<int64_t>(config_.min_group_shard,
                                   (nq + threads - 1) / threads);
  }
  group->shard_size = shard_size;
  group->num_shards = (nq + shard_size - 1) / shard_size;
  UM_COUNTER_ADD("serving.frontend.batch.exec_group_shards",
                 group->num_shards);
  // Help-first execution: this thread (already a pool worker) claims
  // shards in a loop, and scheduled helpers race it for the rest. A helper
  // stuck behind other queued batches simply never claims a shard, so
  // completion never depends on free pool capacity — no deadlock when
  // every worker is itself a batch executor.
  const int64_t helpers =
      std::min<int64_t>(group->num_shards - 1, threads - 1);
  auto run_shards = [this, group] {
    for (;;) {
      const int64_t shard = group->next_shard.fetch_add(1);
      if (shard >= group->num_shards) return;
      RunGroupShard(*group, shard);
      group->shards_done.fetch_add(1, std::memory_order_release);
    }
  };
  for (int64_t h = 0; h < helpers; ++h) exec_pool_.Schedule(run_shards);
  run_shards();
  // Late-claimed shards run on helpers; their promise fulfillment happens
  // before shards_done reaches num_shards, so returning here means the
  // whole group has answered.
  while (group->shards_done.load(std::memory_order_acquire) !=
         group->num_shards) {
    std::this_thread::yield();
  }
}

void ServingFrontend::RunGroupShard(GroupExec& group, int64_t shard) {
  const int64_t nq = static_cast<int64_t>(group.slots.size());
  const int64_t q0 = shard * group.shard_size;
  const int64_t q1 = std::min(q0 + group.shard_size, nq);
  std::vector<Result<std::vector<core::Scored>>> results;
  if (group.ir) {
    group.snapshot->MultiRecommendItems(group.ids.data() + q0, q1 - q0,
                                        group.top_k, &results);
  } else {
    group.snapshot->MultiTargetUsers(group.ids.data() + q0, q1 - q0,
                                     group.top_k, &results);
  }
  for (int64_t j = q0; j < q1; ++j) {
    Pending& pending = (*group.batch)[group.slots[j]];
    switch (pending.request.kind) {
      case RequestKind::kRecommendItems:
        UM_COUNTER_INC("serving.frontend.requests.ir");
        break;
      case RequestKind::kTargetUsers:
        UM_COUNTER_INC("serving.frontend.requests.ut");
        break;
      case RequestKind::kBuildAudience:
        UM_COUNTER_INC("serving.frontend.requests.audience");
        break;
    }
    Response response;
    response.snapshot_version = group.snapshot->version();
    Result<std::vector<core::Scored>>& result = results[j - q0];
    if (result.ok()) {
      response.results = std::move(result).value();
    } else {
      response.status = result.status();
    }
    FinishRequest(&pending, std::move(response));
  }
}

void ServingFrontend::FinishRequest(Pending* pending, Response response) {
  if (!response.status.ok()) {
    UM_COUNTER_INC("serving.frontend.errors");
  }
  response.latency_ms = MillisSince(pending->enqueued_at, Clock::now());
  if (obs::MetricsEnabled()) {
    request_ms_->Observe(response.latency_ms);
  }
  UM_COUNTER_INC("serving.frontend.completed");
  pending->promise.set_value(std::move(response));
}

}  // namespace unimatch::serving
