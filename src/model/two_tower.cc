#include "src/model/two_tower.h"

#include <algorithm>

#include "src/nn/init.h"
#include "src/util/string_util.h"

namespace unimatch::model {

const char* ContextExtractorToString(ContextExtractor e) {
  switch (e) {
    case ContextExtractor::kNone:
      return "YoutubeDNN";
    case ContextExtractor::kCnn:
      return "CNN-l1";
    case ContextExtractor::kGru:
      return "GRU";
    case ContextExtractor::kLstm:
      return "LSTM";
    case ContextExtractor::kTransformer:
      return "Transformer-l1";
  }
  return "?";
}

const char* AggregatorToString(Aggregator a) {
  switch (a) {
    case Aggregator::kMean:
      return "mean";
    case Aggregator::kLast:
      return "last";
    case Aggregator::kMax:
      return "max";
    case Aggregator::kAttention:
      return "attn";
  }
  return "?";
}

Result<ContextExtractor> ContextExtractorFromString(const std::string& s) {
  if (s == "none" || s == "youtube_dnn" || s == "YoutubeDNN") {
    return ContextExtractor::kNone;
  }
  if (s == "cnn") return ContextExtractor::kCnn;
  if (s == "gru") return ContextExtractor::kGru;
  if (s == "lstm") return ContextExtractor::kLstm;
  if (s == "transformer") return ContextExtractor::kTransformer;
  return Status::InvalidArgument("unknown context extractor: " + s);
}

Result<Aggregator> AggregatorFromString(const std::string& s) {
  if (s == "mean") return Aggregator::kMean;
  if (s == "last") return Aggregator::kLast;
  if (s == "max") return Aggregator::kMax;
  if (s == "attn" || s == "attention") return Aggregator::kAttention;
  return Status::InvalidArgument("unknown aggregator: " + s);
}

TwoTowerModel::TwoTowerModel(const TwoTowerConfig& config) : config_(config) {
  UM_CHECK_GT(config_.num_items, 0);
  UM_CHECK_GT(config_.embedding_dim, 0);
  UM_CHECK_GE(config_.num_extractor_layers, 1);
  Rng rng(config_.seed);
  const int64_t d = config_.embedding_dim;
  item_embeddings_ = RegisterParameter(
      "item_embeddings",
      nn::NormalInit({config_.num_items, d}, 0.1f, &rng));
  if (config_.share_embeddings) {
    user_lookup_ = item_embeddings_;
  } else {
    user_lookup_ = RegisterParameter(
        "user_lookup_embeddings",
        nn::NormalInit({config_.num_items, d}, 0.1f, &rng));
  }
  const int layers = config_.extractor == ContextExtractor::kNone
                         ? 0
                         : config_.num_extractor_layers;
  for (int l = 0; l < layers; ++l) {
    const std::string suffix = StrFormat("_%d", l);
    switch (config_.extractor) {
      case ContextExtractor::kNone:
        break;
      case ContextExtractor::kCnn:
        cnn_.push_back(
            std::make_unique<nn::Conv1dSame>(d, d, config_.conv_kernel, &rng));
        RegisterChild("cnn" + suffix, cnn_.back().get());
        break;
      case ContextExtractor::kGru:
        gru_.push_back(std::make_unique<nn::Gru>(d, d, &rng));
        RegisterChild("gru" + suffix, gru_.back().get());
        break;
      case ContextExtractor::kLstm:
        lstm_.push_back(std::make_unique<nn::Lstm>(d, d, &rng));
        RegisterChild("lstm" + suffix, lstm_.back().get());
        break;
      case ContextExtractor::kTransformer:
        transformer_.push_back(
            std::make_unique<nn::TransformerLayer>(d, config_.ffn_dim, &rng));
        RegisterChild("transformer" + suffix, transformer_.back().get());
        break;
    }
  }
  if (config_.aggregator == Aggregator::kAttention) {
    attention_pool_ = std::make_unique<nn::AttentionPoolLayer>(d, &rng);
    RegisterChild("attention_pool", attention_pool_.get());
  }
}

nn::Variable TwoTowerModel::EncodeUsers(
    const std::vector<int64_t>& history_ids,
    const std::vector<int64_t>& lengths, Rng* dropout_rng) const {
  const int64_t b = static_cast<int64_t>(lengths.size());
  UM_CHECK_GT(b, 0);
  UM_CHECK_EQ(static_cast<int64_t>(history_ids.size()) % b, 0);
  const int64_t l = static_cast<int64_t>(history_ids.size()) / b;
  nn::Variable seq =
      nn::EmbeddingLookupSeq(user_lookup_, history_ids, b, l);
  return EncodeFromEmbedded(seq, lengths, dropout_rng);
}

nn::Variable TwoTowerModel::EncodeFromEmbedded(
    const nn::Variable& raw_seq, const std::vector<int64_t>& lengths,
    Rng* dropout_rng) const {
  nn::Variable seq = raw_seq;
  if (dropout_rng != nullptr && config_.dropout > 0.0f) {
    seq = nn::Dropout(seq, config_.dropout, dropout_rng);
  }
  const int layers = config_.extractor == ContextExtractor::kNone
                         ? 0
                         : config_.num_extractor_layers;
  for (int layer = 0; layer < layers; ++layer) {
    switch (config_.extractor) {
      case ContextExtractor::kNone:
        break;
      case ContextExtractor::kCnn:
        seq = cnn_[layer]->Forward(seq, lengths);
        break;
      case ContextExtractor::kGru:
        seq = gru_[layer]->Forward(seq, lengths);
        break;
      case ContextExtractor::kLstm:
        seq = lstm_[layer]->Forward(seq, lengths);
        break;
      case ContextExtractor::kTransformer:
        seq = transformer_[layer]->Forward(seq, lengths);
        break;
    }
  }
  switch (config_.aggregator) {
    case Aggregator::kMean:
      return nn::MaskedMeanPool(seq, lengths);
    case Aggregator::kLast:
      return nn::LastPool(seq, lengths);
    case Aggregator::kMax:
      return nn::MaskedMaxPool(seq, lengths);
    case Aggregator::kAttention:
      return attention_pool_->Forward(seq, lengths);
  }
  UM_LOG(FATAL) << "unreachable";
  return nn::Variable();
}

nn::Variable TwoTowerModel::EncodeItems(
    const std::vector<int64_t>& item_ids) const {
  return nn::EmbeddingLookup(item_embeddings_, item_ids);
}

void TwoTowerModel::AliasParametersFrom(const TwoTowerModel& src) {
  std::vector<nn::NamedParameter> mine = Parameters();
  std::vector<nn::NamedParameter> theirs = src.Parameters();
  UM_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    UM_CHECK(mine[i].name == theirs[i].name)
        << mine[i].name << " vs " << theirs[i].name;
    UM_CHECK(mine[i].variable.value().same_shape(theirs[i].variable.value()))
        << "param " << mine[i].name;
    // Tensor is a refcounted handle: assigning the value makes this model's
    // parameter node read src's storage while keeping its own grad buffer.
    mine[i].variable.mutable_value() = theirs[i].variable.value();
  }
}

nn::Variable TwoTowerModel::Normalize(const nn::Variable& emb) const {
  if (!config_.l2_normalize) return emb;
  return nn::L2NormalizeRows(emb);
}

nn::Variable TwoTowerModel::ScoreMatrix(const nn::Variable& users,
                                        const nn::Variable& items) const {
  nn::Variable u = Normalize(users);
  nn::Variable i = Normalize(items);
  return nn::ScalarMul(nn::MatMul(u, i, false, true),
                       1.0f / config_.temperature);
}

nn::Variable TwoTowerModel::ScorePairs(const nn::Variable& users,
                                       const nn::Variable& items) const {
  nn::Variable u = Normalize(users);
  nn::Variable i = Normalize(items);
  return nn::ScalarMul(nn::RowwiseDot(u, i), 1.0f / config_.temperature);
}

void TwoTowerModel::SetInferenceProgramMode(bool use_cache, bool fuse) {
  MutexLock lock(&infer_mu_);
  infer_use_programs_ = use_cache;
  infer_fuse_ = fuse;
}

Tensor TwoTowerModel::InferUserSliceLocked(const std::vector<int64_t>& ids,
                                           const std::vector<int64_t>& lengths,
                                           int64_t max_len) const {
  const int64_t bsz = static_cast<int64_t>(lengths.size());
  if (!nn::kProgramCacheEnabled || !infer_use_programs_) {
    return Normalize(EncodeUsers(ids, lengths)).value();
  }
  // Extractor/aggregator/l2 are fixed per model, but the fusion toggle is
  // not — keying on it keeps the bench's fused/unfused arms from sharing
  // entries.
  const nn::ProgramKey key = nn::ProgramKey::Make(
      "infer.user", {bsz, max_len, static_cast<int64_t>(config_.extractor),
                     static_cast<int64_t>(config_.aggregator),
                     config_.num_extractor_layers, config_.l2_normalize ? 1 : 0,
                     infer_fuse_ ? 1 : 0});
  std::shared_ptr<nn::Program> program = infer_programs_.Lookup(key);
  if (program != nullptr && program->replayable()) {
    program->BindIds("infer.ids", ids);
    program->BindIds("infer.len", lengths);
    program->ReplayForward();
    return program->root_value();
  }
  if (program != nullptr) {
    // Tombstone: this shape's recording hit a non-replayable op (extractor /
    // attention ops the recorder cannot replay yet) — stay on the tape.
    return Normalize(EncodeUsers(ids, lengths)).value();
  }
  nn::ProgramRecorder recorder;
  const std::vector<int64_t>& ids_slot = recorder.BindIds("infer.ids", ids);
  const std::vector<int64_t>& len_slot = recorder.BindIds("infer.len", lengths);
  nn::Variable emb = Normalize(EncodeUsers(ids_slot, len_slot));
  program = recorder.FinishForward(emb);
  if (program->replayable() && infer_fuse_) program->FuseForInference();
  infer_programs_.Insert(key, std::move(program));
  return emb.value();
}

Tensor TwoTowerModel::InferUserEmbeddings(
    const std::vector<std::vector<int64_t>>& histories, int64_t batch) const {
  const int64_t n = static_cast<int64_t>(histories.size());
  const int64_t d = config_.embedding_dim;
  Tensor out({n, d});
  // Held across all slices: replay rewrites program-owned buffers in place,
  // and the per-slice copy-out below reads them.
  MutexLock lock(&infer_mu_);
  for (int64_t begin = 0; begin < n; begin += batch) {
    const int64_t end = std::min(n, begin + batch);
    // Collect the non-empty rows of this slice.
    std::vector<int64_t> rows;
    int64_t max_len = 1;
    for (int64_t r = begin; r < end; ++r) {
      if (!histories[r].empty()) {
        rows.push_back(r);
        max_len = std::max<int64_t>(
            max_len, static_cast<int64_t>(histories[r].size()));
      }
    }
    if (rows.empty()) continue;
    const int64_t bsz = static_cast<int64_t>(rows.size());
    std::vector<int64_t> ids(bsz * max_len, nn::kPadId);
    std::vector<int64_t> lengths(bsz);
    for (int64_t k = 0; k < bsz; ++k) {
      const auto& h = histories[rows[k]];
      lengths[k] = static_cast<int64_t>(h.size());
      std::copy(h.begin(), h.end(), ids.begin() + k * max_len);
    }
    const Tensor emb = InferUserSliceLocked(ids, lengths, max_len);
    for (int64_t k = 0; k < bsz; ++k) {
      const float* src = emb.data() + k * d;
      std::copy(src, src + d, out.data() + rows[k] * d);
    }
  }
  return out;
}

Tensor TwoTowerModel::InferItemEmbeddings() const {
  std::vector<int64_t> ids(config_.num_items);
  for (int64_t i = 0; i < config_.num_items; ++i) ids[i] = i;
  MutexLock lock(&infer_mu_);
  if (!nn::kProgramCacheEnabled || !infer_use_programs_) {
    nn::Variable emb = Normalize(EncodeItems(ids));
    // Tensors are refcounted handles: returning the value aliases the
    // encoder output instead of copying the whole [num_items, d] matrix.
    return emb.value();
  }
  const nn::ProgramKey key = nn::ProgramKey::Make(
      "infer.items", {config_.num_items, config_.l2_normalize ? 1 : 0,
                      infer_fuse_ ? 1 : 0});
  std::shared_ptr<nn::Program> program = infer_programs_.Lookup(key);
  if (program != nullptr && program->replayable()) {
    program->BindIds("infer.item_ids", ids);
    program->ReplayForward();
    // Clone: the program keeps (and next replay rewrites) its own buffer.
    return program->root_value().Clone();
  }
  if (program != nullptr) {
    return Normalize(EncodeItems(ids)).value();
  }
  nn::ProgramRecorder recorder;
  const std::vector<int64_t>& ids_slot =
      recorder.BindIds("infer.item_ids", ids);
  nn::Variable emb = Normalize(EncodeItems(ids_slot));
  program = recorder.FinishForward(emb);
  if (program->replayable() && infer_fuse_) program->FuseForInference();
  infer_programs_.Insert(key, std::move(program));
  return emb.value().Clone();
}

}  // namespace unimatch::model
