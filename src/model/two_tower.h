// The UniMatch two-tower architecture (Fig. 2 of the paper).
//
// User tower: item-embedding lookup of the behavior sequence -> context
// extractor (none / CNN / GRU / LSTM / Transformer) -> aggregator (mean /
// last / max / attention pooling) -> d-dim user vector.
// Item tower: a row of the shared item-embedding lookup table.
// Matching score (Eq. 13): phi(u, i) = <u, i> / (||u|| ||i|| tau).
//
// "YoutubeDNN" in the paper's Table XII corresponds to extractor = kNone
// (the lookup embeddings go straight to the aggregation layer).

#ifndef UNIMATCH_MODEL_TWO_TOWER_H_
#define UNIMATCH_MODEL_TWO_TOWER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/attention.h"
#include "src/nn/conv.h"
#include "src/nn/module.h"
#include "src/nn/ops.h"
#include "src/nn/program.h"
#include "src/nn/rnn.h"
#include "src/nn/seq_ops.h"
#include "src/util/mutex.h"
#include "src/util/status.h"

namespace unimatch::model {

enum class ContextExtractor { kNone, kCnn, kGru, kLstm, kTransformer };
enum class Aggregator { kMean, kLast, kMax, kAttention };

const char* ContextExtractorToString(ContextExtractor e);
const char* AggregatorToString(Aggregator a);
Result<ContextExtractor> ContextExtractorFromString(const std::string& s);
Result<Aggregator> AggregatorFromString(const std::string& s);

struct TwoTowerConfig {
  int64_t num_items = 0;
  int64_t embedding_dim = 16;  // the paper's d = 16
  ContextExtractor extractor = ContextExtractor::kNone;
  Aggregator aggregator = Aggregator::kMean;
  /// Temperature tau of Eq. 13.
  float temperature = 0.2f;
  /// L2-normalize tower outputs before the dot product (Eq. 13). The
  /// ablation bench turns this off.
  bool l2_normalize = true;
  /// Transformer FFN width.
  int64_t ffn_dim = 32;
  /// CNN kernel size (odd).
  int64_t conv_kernel = 3;
  /// Stacked context-extractor layers (CNN/GRU/LSTM/Transformer only).
  int num_extractor_layers = 1;
  /// Dropout rate on the embedded behavior sequence (training only;
  /// applied when a dropout RNG is passed to EncodeUsers).
  float dropout = 0.0f;
  /// Share the item-embedding lookup table between the towers (the paper's
  /// design, Fig. 2). false gives each tower its own table — the
  /// bench_ablation_shared_emb comparison.
  bool share_embeddings = true;
  /// Parameter-init seed.
  uint64_t seed = 7;
};

class TwoTowerModel : public nn::Module {
 public:
  explicit TwoTowerModel(const TwoTowerConfig& config);

  /// Encodes a batch of histories (row-major [B, L] ids, nn::kPadId padded)
  /// into raw (pre-normalization) user vectors [B, d]. Passing a non-null
  /// `dropout_rng` enables training-time dropout on the embedded sequence
  /// (config().dropout); inference callers leave it null.
  nn::Variable EncodeUsers(const std::vector<int64_t>& history_ids,
                           const std::vector<int64_t>& lengths,
                           Rng* dropout_rng = nullptr) const;

  /// The user tower minus the embedding lookup: runs dropout, the context
  /// extractor, and the aggregator on an already-embedded [B, L, d]
  /// sequence. EncodeUsers is exactly lookup + this; the sharded training
  /// step uses it to drive per-shard towers from gathered embedding rows.
  nn::Variable EncodeFromEmbedded(const nn::Variable& seq,
                                  const std::vector<int64_t>& lengths,
                                  Rng* dropout_rng = nullptr) const;

  /// The user-tower lookup table parameter ([num_items, d]; aliases the
  /// item table when share_embeddings).
  const nn::Variable& user_lookup_table() const { return user_lookup_; }

  /// Points every parameter VALUE of this model at `src`'s storage (the
  /// Tensor handles alias, gradients stay separate). Used to build
  /// per-shard tower replicas that read the primary's weights but
  /// accumulate their own gradients.
  void AliasParametersFrom(const TwoTowerModel& src);

  /// Encodes item ids into raw item vectors [B, d].
  nn::Variable EncodeItems(const std::vector<int64_t>& item_ids) const;

  /// Applies Eq. 13's normalization (l2 + nothing else) to tower outputs.
  nn::Variable Normalize(const nn::Variable& emb) const;

  /// Full phi matrix between a user batch and an item batch:
  /// out[r][c] = phi(u_r, i_c), including the 1/tau rescale. Inputs are raw
  /// tower outputs.
  nn::Variable ScoreMatrix(const nn::Variable& users,
                           const nn::Variable& items) const;

  /// Row-wise phi(u_r, i_r) for paired batches -> [B].
  nn::Variable ScorePairs(const nn::Variable& users,
                          const nn::Variable& items) const;

  /// ----- inference (no gradient bookkeeping kept by the caller) -----
  /// Normalized user embeddings for arbitrary histories; empty histories
  /// produce zero vectors. Processed in slices of `batch` rows.
  Tensor InferUserEmbeddings(const std::vector<std::vector<int64_t>>& histories,
                             int64_t batch = 256) const;

  /// Normalized embeddings of every item in the catalog, [num_items, d].
  Tensor InferItemEmbeddings() const;

  /// Bench/test hook: toggles the inference program cache and the fusion
  /// pass (both on by default). The tape arm (use_cache = false) is the
  /// parity reference.
  void SetInferenceProgramMode(bool use_cache, bool fuse);

  /// Hit/miss/insert/evict counts of the inference program cache.
  nn::ProgramCache::Stats infer_program_stats() const {
    return infer_programs_.stats();
  }

  const TwoTowerConfig& config() const { return config_; }

 private:
  /// One InferUserEmbeddings slice through the program cache (or the tape
  /// when caching is off / the shape's recording fell back). Caller holds
  /// infer_mu_; the returned handle aliases program-owned storage, so rows
  /// must be copied out before the lock is released.
  Tensor InferUserSliceLocked(const std::vector<int64_t>& ids,
                              const std::vector<int64_t>& lengths,
                              int64_t max_len) const;

  TwoTowerConfig config_;
  nn::Variable item_embeddings_;  // [num_items, d] (item tower)
  /// User-tower lookup table: aliases item_embeddings_ when
  /// share_embeddings, a separate parameter otherwise.
  nn::Variable user_lookup_;
  std::vector<std::unique_ptr<nn::Conv1dSame>> cnn_;
  std::vector<std::unique_ptr<nn::Gru>> gru_;
  std::vector<std::unique_ptr<nn::Lstm>> lstm_;
  std::vector<std::unique_ptr<nn::TransformerLayer>> transformer_;
  std::unique_ptr<nn::AttentionPoolLayer> attention_pool_;

  /// Shape-keyed recorded programs for the inference entry points, and the
  /// mutex that serializes their replay (replay rewrites program-owned
  /// buffers in place). Rank kProgramExec sits below the pool/obs ranks so
  /// replayed closures may shard work and emit metrics while it is held.
  mutable nn::ProgramCache infer_programs_;
  mutable Mutex infer_mu_{lockrank::kProgramExec, "model.infer_exec"};
  bool infer_use_programs_ = true;
  bool infer_fuse_ = true;
};

}  // namespace unimatch::model

#endif  // UNIMATCH_MODEL_TWO_TOWER_H_
