#include "src/tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/obs/obs.h"
#include "src/util/contract.h"
#include "src/util/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UNIMATCH_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace unimatch::kernels {

namespace {

// ---------------------------------------------------------------------------
// Portable scalar implementations. These double as the reference semantics:
// the AVX2 path must match them up to float reassociation.
// ---------------------------------------------------------------------------

float DotPortable(const float* a, const float* b, int64_t n) {
  // Four independent accumulators: lets -O2 keep the loop pipelined and
  // keeps the summation-order gap to the 8-lane AVX2 path small.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

void AxpyPortable(int64_t n, float alpha, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAddPortable(int64_t n, float alpha, const float* x, float beta,
                      float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

void FusedScaleAxpyPortable(int64_t n, float scale, float* g, float alpha,
                            float* w) {
  for (int64_t i = 0; i < n; ++i) {
    g[i] = scale * g[i];
    w[i] += alpha * g[i];
  }
}

void GemmRowsAxpyPortable(int64_t i0, int64_t i1, int64_t n, int64_t k,
                          float alpha, const float* a, int64_t ars,
                          int64_t acs, const float* b, float beta, float* c) {
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a + i * ars;
    for (int64_t p = 0; p < k; ++p) {
      // No `av == 0` skip here: the branch costs more than the multiply in a
      // vector-friendly loop (and would diverge from the AVX2 path).
      const float av = alpha * arow[p * acs];
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmRowsDotPortable(int64_t i0, int64_t i1, int64_t n, int64_t k,
                         float alpha, const float* a, int64_t ars, int64_t acs,
                         const float* b, float beta, float* c) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * ars;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p * acs] * brow[p];
      crow[j] = beta == 0.0f ? alpha * acc : beta * crow[j] + alpha * acc;
    }
  }
}

// y[i] = alpha * x[i], without reading y (safe for uninitialized output).
void ScaleIntoPortable(int64_t n, float alpha, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = alpha * x[i];
}

// ---------------------------------------------------------------------------
// Scalar binary16 conversion. IEEE-754 half, round-to-nearest-even, with
// subnormal and inf/NaN handling — the portable mirror of the F16C
// VCVTPS2PH/VCVTPH2PS instructions, bitwise-identical to them for every
// finite non-denormal float32 input (verified in quant_test.cc).
// ---------------------------------------------------------------------------

uint16_t F32ToF16Scalar(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t exp = (bits >> 23) & 0xffu;
  uint32_t mant = bits & 0x7fffffu;
  if (exp == 255u) {  // inf / NaN (NaN keeps a nonzero payload, quieted)
    return static_cast<uint16_t>(
        sign | 0x7c00u | (mant != 0 ? (0x200u | (mant >> 13)) : 0u));
  }
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 31) return static_cast<uint16_t>(sign | 0x7c00u);  // overflow: inf
  if (e <= 0) {
    // Half-subnormal range (or underflow to signed zero).
    if (e < -10) return static_cast<uint16_t>(sign);
    mant |= 0x800000u;  // make the implicit leading 1 explicit
    const int shift = 14 - e;
    uint32_t half_mant = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    // A carry out of the 10 mantissa bits lands exactly on the smallest
    // normal half — the bit pattern is already correct.
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(e) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // RNE
  return static_cast<uint16_t>(half);  // mantissa carry overflows into exp,
                                       // saturating to inf — also correct
}

float F16ToF32Scalar(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t bits;
  if (exp == 0u) {
    if (mant == 0u) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalize into a float32 with an explicit exponent.
      int shift = -1;
      do {
        ++shift;
        mant <<= 1;
      } while ((mant & 0x400u) == 0u);
      bits = sign | (static_cast<uint32_t>(112 - shift) << 23) |
             ((mant & 0x3ffu) << 13);
    }
  } else if (exp == 31u) {
    bits = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

float DotF32I8Portable(const float* a, const int8_t* codes, int64_t n) {
  // Same 4-accumulator shape as DotPortable so the backend gap stays within
  // summation-order slack.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * static_cast<float>(codes[i]);
    s1 += a[i + 1] * static_cast<float>(codes[i + 1]);
    s2 += a[i + 2] * static_cast<float>(codes[i + 2]);
    s3 += a[i + 3] * static_cast<float>(codes[i + 3]);
  }
  for (; i < n; ++i) s0 += a[i] * static_cast<float>(codes[i]);
  return (s0 + s1) + (s2 + s3);
}

float DotF32F16Portable(const float* a, const uint16_t* half, int64_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * F16ToF32Scalar(half[i]);
    s1 += a[i + 1] * F16ToF32Scalar(half[i + 1]);
    s2 += a[i + 2] * F16ToF32Scalar(half[i + 2]);
    s3 += a[i + 3] * F16ToF32Scalar(half[i + 3]);
  }
  for (; i < n; ++i) s0 += a[i] * F16ToF32Scalar(half[i]);
  return (s0 + s1) + (s2 + s3);
}

// ---------------------------------------------------------------------------
// AVX2 + FMA implementations. Compiled with per-function target attributes,
// only ever called after a runtime CPUID check.
// ---------------------------------------------------------------------------

#if defined(UNIMATCH_KERNELS_X86)

__attribute__((target("avx2,fma"))) inline float Hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float DotAvx2(const float* a,
                                                  const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float sum = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(int64_t n, float alpha,
                                                  const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) void ScaleAddAvx2(int64_t n, float alpha,
                                                      const float* x,
                                                      float beta, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(beta);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 scaled_y = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), scaled_y));
  }
  for (; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

__attribute__((target("avx2,fma"))) void FusedScaleAxpyAvx2(int64_t n,
                                                            float scale,
                                                            float* g,
                                                            float alpha,
                                                            float* w) {
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vg = _mm256_mul_ps(vs, _mm256_loadu_ps(g + i));
    _mm256_storeu_ps(g + i, vg);
    _mm256_storeu_ps(w + i, _mm256_fmadd_ps(va, vg, _mm256_loadu_ps(w + i)));
  }
  for (; i < n; ++i) {
    g[i] = scale * g[i];
    w[i] += alpha * g[i];
  }
}

__attribute__((target("avx2,fma"))) void ScaleIntoAvx2(int64_t n, float alpha,
                                                       const float* x,
                                                       float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
}

// Register-tiled axpy-layout gemm micro-kernel: 4 C rows x 16 C columns of
// accumulators (8 YMM registers) stay live across the whole k loop; each
// k step is one broadcast per row + two B loads + eight FMAs.
__attribute__((target("avx2,fma"))) void GemmRowsAxpyAvx2(
    int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha, const float* a,
    int64_t ars, int64_t acs, const float* b, float beta, float* c) {
  // Fold beta into the row block up front so the tiles accumulate in place.
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
      ScaleAddAvx2(n, 0.0f, crow, beta, crow);
    }
  }
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + (i + 0) * ars;
    const float* a1 = a + (i + 1) * ars;
    const float* a2 = a + (i + 2) * ars;
    const float* a3 = a + (i + 3) * ars;
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 t00 = _mm256_loadu_ps(c0 + j), t01 = _mm256_loadu_ps(c0 + j + 8);
      __m256 t10 = _mm256_loadu_ps(c1 + j), t11 = _mm256_loadu_ps(c1 + j + 8);
      __m256 t20 = _mm256_loadu_ps(c2 + j), t21 = _mm256_loadu_ps(c2 + j + 8);
      __m256 t30 = _mm256_loadu_ps(c3 + j), t31 = _mm256_loadu_ps(c3 + j + 8);
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const int64_t ao = p * acs;
        __m256 av = _mm256_set1_ps(alpha * a0[ao]);
        t00 = _mm256_fmadd_ps(av, b0, t00);
        t01 = _mm256_fmadd_ps(av, b1, t01);
        av = _mm256_set1_ps(alpha * a1[ao]);
        t10 = _mm256_fmadd_ps(av, b0, t10);
        t11 = _mm256_fmadd_ps(av, b1, t11);
        av = _mm256_set1_ps(alpha * a2[ao]);
        t20 = _mm256_fmadd_ps(av, b0, t20);
        t21 = _mm256_fmadd_ps(av, b1, t21);
        av = _mm256_set1_ps(alpha * a3[ao]);
        t30 = _mm256_fmadd_ps(av, b0, t30);
        t31 = _mm256_fmadd_ps(av, b1, t31);
      }
      _mm256_storeu_ps(c0 + j, t00);
      _mm256_storeu_ps(c0 + j + 8, t01);
      _mm256_storeu_ps(c1 + j, t10);
      _mm256_storeu_ps(c1 + j + 8, t11);
      _mm256_storeu_ps(c2 + j, t20);
      _mm256_storeu_ps(c2 + j + 8, t21);
      _mm256_storeu_ps(c3 + j, t30);
      _mm256_storeu_ps(c3 + j + 8, t31);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 t0 = _mm256_loadu_ps(c0 + j);
      __m256 t1 = _mm256_loadu_ps(c1 + j);
      __m256 t2 = _mm256_loadu_ps(c2 + j);
      __m256 t3 = _mm256_loadu_ps(c3 + j);
      for (int64_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * n + j);
        const int64_t ao = p * acs;
        t0 = _mm256_fmadd_ps(_mm256_set1_ps(alpha * a0[ao]), bv, t0);
        t1 = _mm256_fmadd_ps(_mm256_set1_ps(alpha * a1[ao]), bv, t1);
        t2 = _mm256_fmadd_ps(_mm256_set1_ps(alpha * a2[ao]), bv, t2);
        t3 = _mm256_fmadd_ps(_mm256_set1_ps(alpha * a3[ao]), bv, t3);
      }
      _mm256_storeu_ps(c0 + j, t0);
      _mm256_storeu_ps(c1 + j, t1);
      _mm256_storeu_ps(c2 + j, t2);
      _mm256_storeu_ps(c3 + j, t3);
    }
    for (; j < n; ++j) {
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float bv = b[p * n + j];
        const int64_t ao = p * acs;
        s0 += a0[ao] * bv;
        s1 += a1[ao] * bv;
        s2 += a2[ao] * bv;
        s3 += a3[ao] * bv;
      }
      c0[j] += alpha * s0;
      c1[j] += alpha * s1;
      c2[j] += alpha * s2;
      c3[j] += alpha * s3;
    }
  }
  // Leftover rows (< 4): one row of accumulators, same column tiling.
  for (; i < i1; ++i) {
    const float* arow = a + i * ars;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 t0 = _mm256_loadu_ps(crow + j);
      __m256 t1 = _mm256_loadu_ps(crow + j + 8);
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j;
        const __m256 av = _mm256_set1_ps(alpha * arow[p * acs]);
        t0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), t0);
        t1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), t1);
      }
      _mm256_storeu_ps(crow + j, t0);
      _mm256_storeu_ps(crow + j + 8, t1);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 t0 = _mm256_loadu_ps(crow + j);
      for (int64_t p = 0; p < k; ++p) {
        const __m256 av = _mm256_set1_ps(alpha * arow[p * acs]);
        t0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + p * n + j), t0);
      }
      _mm256_storeu_ps(crow + j, t0);
    }
    for (; j < n; ++j) {
      float s = 0.0f;
      for (int64_t p = 0; p < k; ++p) s += arow[p * acs] * b[p * n + j];
      crow[j] += alpha * s;
    }
  }
}

// Dot-layout gemm: 4 dot products (one C row x 4 B rows) accumulate in
// parallel over contiguous k. Requires unit A column stride for vector
// loads; the strided case (trans_a && trans_b, rare — only the backward of
// a doubly-transposed matmul) falls back to the portable loop.
__attribute__((target("avx2,fma"))) void GemmRowsDotAvx2(
    int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha, const float* a,
    int64_t ars, int64_t acs, const float* b, float beta, float* c) {
  if (acs != 1) {
    GemmRowsDotPortable(i0, i1, n, k, alpha, a, ars, acs, b, beta, c);
    return;
  }
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * ars;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
      __m256 s2 = _mm256_setzero_ps(), s3 = _mm256_setzero_ps();
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 va = _mm256_loadu_ps(arow + p);
        s0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + p), s0);
        s1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + p), s1);
        s2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + p), s2);
        s3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + p), s3);
      }
      float t0 = Hsum256(s0), t1 = Hsum256(s1);
      float t2 = Hsum256(s2), t3 = Hsum256(s3);
      for (; p < k; ++p) {
        const float av = arow[p];
        t0 += av * b0[p];
        t1 += av * b1[p];
        t2 += av * b2[p];
        t3 += av * b3[p];
      }
      if (beta == 0.0f) {
        crow[j + 0] = alpha * t0;
        crow[j + 1] = alpha * t1;
        crow[j + 2] = alpha * t2;
        crow[j + 3] = alpha * t3;
      } else {
        crow[j + 0] = beta * crow[j + 0] + alpha * t0;
        crow[j + 1] = beta * crow[j + 1] + alpha * t1;
        crow[j + 2] = beta * crow[j + 2] + alpha * t2;
        crow[j + 3] = beta * crow[j + 3] + alpha * t3;
      }
    }
    for (; j < n; ++j) {
      const float t = DotAvx2(arow, b + j * k, k);
      crow[j] = beta == 0.0f ? alpha * t : beta * crow[j] + alpha * t;
    }
  }
}

// int8 dot: sign-extend 8 codes at a time to int32 lanes, convert to float
// (exact for int8 range), and fmadd against the float query.
__attribute__((target("avx2,fma"))) float DotF32I8Avx2(const float* a,
                                                       const int8_t* codes,
                                                       int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 lo =
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    const __m256 hi =
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(bytes, 8)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), lo, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), hi, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), v, acc0);
  }
  float sum = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * static_cast<float>(codes[i]);
  return sum;
}

// binary16 kernels need F16C on top of AVX2+FMA; all three are checked
// together by CpuHasAvx2Fma below, so the kAvx2 backend implies F16C.
__attribute__((target("avx2,fma,f16c"))) float DotF32F16Avx2(
    const float* a, const uint16_t* half, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 h0 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(half + i)));
    const __m256 h1 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(half + i + 8)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), h0, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), h1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 h = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(half + i)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), h, acc0);
  }
  float sum = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * F16ToF32Scalar(half[i]);
  return sum;
}

__attribute__((target("avx2,fma,f16c"))) void F32ToF16Avx2(int64_t n,
                                                           const float* src,
                                                           uint16_t* dst) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                                      _MM_FROUND_TO_NEAREST_INT |
                                          _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = F32ToF16Scalar(src[i]);
}

__attribute__((target("avx2,fma,f16c"))) void F16ToF32Avx2(int64_t n,
                                                           const uint16_t* src,
                                                           float* dst) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_cvtph_ps(_mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(src + i))));
  }
  for (; i < n; ++i) dst[i] = F16ToF32Scalar(src[i]);
}

__attribute__((target("avx2,fma"))) void DequantRowsI8Avx2(
    int64_t rows, int64_t d, const int8_t* codes, int64_t row_stride,
    const float* scales, float* out) {
  for (int64_t r = 0; r < rows; ++r) {
    const int8_t* src = codes + r * row_stride;
    float* dst = out + r * d;
    const float s = scales[r];
    const __m256 scale = _mm256_set1_ps(s);
    int64_t j = 0;
    for (; j + 16 <= d; j += 16) {
      const __m128i bytes =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
      const __m256 lo = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
      const __m256 hi = _mm256_cvtepi32_ps(
          _mm256_cvtepi8_epi32(_mm_srli_si128(bytes, 8)));
      _mm256_storeu_ps(dst + j, _mm256_mul_ps(scale, lo));
      _mm256_storeu_ps(dst + j + 8, _mm256_mul_ps(scale, hi));
    }
    for (; j + 8 <= d; j += 8) {
      const __m128i bytes =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + j));
      const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
      _mm256_storeu_ps(dst + j, _mm256_mul_ps(scale, v));
    }
    for (; j < d; ++j) dst[j] = s * static_cast<float>(src[j]);
  }
}

bool CpuHasAvx2Fma() {
  // F16C is folded into the one backend decision: every AVX2+FMA part since
  // Haswell also has F16C, and a single cut keeps dispatch two-way.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
}

#else  // !UNIMATCH_KERNELS_X86

bool CpuHasAvx2Fma() { return false; }

#endif  // UNIMATCH_KERNELS_X86

void ScaleInto(int64_t n, float alpha, const float* x, float* y) {
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    ScaleIntoAvx2(n, alpha, x, y);
    return;
  }
#endif
  ScaleIntoPortable(n, alpha, x, y);
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

constexpr int kBackendUnresolved = -1;
std::atomic<int> g_backend{kBackendUnresolved};

Backend ResolveBackend() {
  Backend resolved = CpuHasAvx2Fma() ? Backend::kAvx2 : Backend::kPortable;
  if (const char* env = std::getenv("UNIMATCH_KERNEL_BACKEND")) {
    if (std::strcmp(env, "portable") == 0) {
      resolved = Backend::kPortable;
    } else if (std::strcmp(env, "avx2") == 0) {
      UM_CHECK(CpuHasAvx2Fma())
          << "UNIMATCH_KERNEL_BACKEND=avx2 but the CPU lacks AVX2/FMA";
      resolved = Backend::kAvx2;
    } else if (std::strcmp(env, "auto") != 0 && env[0] != '\0') {
      UM_LOG(WARNING) << "UNIMATCH_KERNEL_BACKEND='" << env
                      << "' not recognized (want auto|avx2|portable); "
                      << "using auto";
    }
  }
  UM_GAUGE_SET("tensor.kernels.backend", static_cast<double>(resolved));
  return resolved;
}

}  // namespace

Backend ActiveBackend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b == kBackendUnresolved) {
    b = static_cast<int>(ResolveBackend());
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<Backend>(b);
}

const char* BackendName(Backend backend) {
  return backend == Backend::kAvx2 ? "avx2" : "portable";
}

void SetBackendForTest(Backend backend) {
  UM_CONTRACT(backend != Backend::kAvx2 || CpuHasAvx2Fma())
      << "cannot force the AVX2 backend on a CPU without AVX2/FMA";
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
  UM_GAUGE_SET("tensor.kernels.backend", static_cast<double>(backend));
}

void ResetBackendForTest() {
  g_backend.store(kBackendUnresolved, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Dispatched entry points. Boundary contracts live here so both backends are
// covered by one check.
// ---------------------------------------------------------------------------

float DotF32(const float* a, const float* b, int64_t n) {
  UM_CONTRACT(n >= 0 && (n == 0 || (a != nullptr && b != nullptr)))
      << "DotF32 n=" << n;
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) return DotAvx2(a, b, n);
#endif
  return DotPortable(a, b, n);
}

void AxpyF32(int64_t n, float alpha, const float* x, float* y) {
  UM_CONTRACT(n >= 0 && (n == 0 || (x != nullptr && y != nullptr)))
      << "AxpyF32 n=" << n;
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    AxpyAvx2(n, alpha, x, y);
    return;
  }
#endif
  AxpyPortable(n, alpha, x, y);
}

void ScaleAddF32(int64_t n, float alpha, const float* x, float beta,
                 float* y) {
  UM_CONTRACT(n >= 0 && (n == 0 || (x != nullptr && y != nullptr)))
      << "ScaleAddF32 n=" << n;
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    ScaleAddAvx2(n, alpha, x, beta, y);
    return;
  }
#endif
  ScaleAddPortable(n, alpha, x, beta, y);
}

void FusedScaleAxpyF32(int64_t n, float scale, float* g, float alpha,
                       float* w) {
  UM_CONTRACT(n >= 0 && (n == 0 || (g != nullptr && w != nullptr)))
      << "FusedScaleAxpyF32 n=" << n;
  UM_CONTRACT(n == 0 || g != w) << "FusedScaleAxpyF32 aliased g/w";
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    FusedScaleAxpyAvx2(n, scale, g, alpha, w);
    return;
  }
#endif
  FusedScaleAxpyPortable(n, scale, g, alpha, w);
}

float L2NormalizeF32(int64_t n, const float* x, float* y, float eps) {
  UM_CONTRACT(n >= 0 && (n == 0 || (x != nullptr && y != nullptr)))
      << "L2NormalizeF32 n=" << n;
  UM_CONTRACT(eps > 0.0f) << "L2NormalizeF32 eps=" << eps;
  const float norm = std::max(std::sqrt(DotF32(x, x, n)), eps);
  ScaleInto(n, 1.0f / norm, x, y);  // writes y without reading it
  return norm;
}

namespace {

void CheckGemmRowsArgs(int64_t i0, int64_t i1, int64_t n, int64_t k,
                       const float* a, const float* b, const float* c) {
  UM_CONTRACT(0 <= i0 && i0 <= i1) << "gemm row range [" << i0 << ", " << i1
                                   << ")";
  UM_CONTRACT(n >= 0 && k >= 0) << "gemm dims n=" << n << " k=" << k;
  UM_CONTRACT(i0 == i1 || n == 0 ||
              (c != nullptr && (k == 0 || (a != nullptr && b != nullptr))))
      << "gemm kernel got null operand";
}

}  // namespace

void GemmRowsAxpy(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
                  const float* a, int64_t a_row_stride, int64_t a_col_stride,
                  const float* b, float beta, float* c) {
  CheckGemmRowsArgs(i0, i1, n, k, a, b, c);
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    GemmRowsAxpyAvx2(i0, i1, n, k, alpha, a, a_row_stride, a_col_stride, b,
                     beta, c);
    return;
  }
#endif
  GemmRowsAxpyPortable(i0, i1, n, k, alpha, a, a_row_stride, a_col_stride, b,
                       beta, c);
}

void GemmRowsDot(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t a_row_stride, int64_t a_col_stride,
                 const float* b, float beta, float* c) {
  CheckGemmRowsArgs(i0, i1, n, k, a, b, c);
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    GemmRowsDotAvx2(i0, i1, n, k, alpha, a, a_row_stride, a_col_stride, b,
                    beta, c);
    return;
  }
#endif
  GemmRowsDotPortable(i0, i1, n, k, alpha, a, a_row_stride, a_col_stride, b,
                      beta, c);
}

float DotF32I8(const float* a, const int8_t* codes, int64_t n) {
  UM_CONTRACT(n >= 0 && (n == 0 || (a != nullptr && codes != nullptr)))
      << "DotF32I8 n=" << n;
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) return DotF32I8Avx2(a, codes, n);
#endif
  return DotF32I8Portable(a, codes, n);
}

float DotF32F16(const float* a, const uint16_t* half, int64_t n) {
  UM_CONTRACT(n >= 0 && (n == 0 || (a != nullptr && half != nullptr)))
      << "DotF32F16 n=" << n;
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) return DotF32F16Avx2(a, half, n);
#endif
  return DotF32F16Portable(a, half, n);
}

void F32ToF16(int64_t n, const float* src, uint16_t* dst) {
  UM_CONTRACT(n >= 0 && (n == 0 || (src != nullptr && dst != nullptr)))
      << "F32ToF16 n=" << n;
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    F32ToF16Avx2(n, src, dst);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) dst[i] = F32ToF16Scalar(src[i]);
}

void F16ToF32(int64_t n, const uint16_t* src, float* dst) {
  UM_CONTRACT(n >= 0 && (n == 0 || (src != nullptr && dst != nullptr)))
      << "F16ToF32 n=" << n;
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    F16ToF32Avx2(n, src, dst);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) dst[i] = F16ToF32Scalar(src[i]);
}

void ScoreRowsI8(int64_t rows, int64_t d, const float* query,
                 const int8_t* codes, int64_t row_stride, const float* scales,
                 float* out) {
  UM_CONTRACT(rows >= 0 && d >= 0 && row_stride >= d)
      << "ScoreRowsI8 rows=" << rows << " d=" << d
      << " stride=" << row_stride;
  UM_CONTRACT(rows == 0 || (query != nullptr && codes != nullptr &&
                            scales != nullptr && out != nullptr))
      << "ScoreRowsI8 got null operand";
  for (int64_t r = 0; r < rows; ++r) {
    out[r] = scales[r] * DotF32I8(query, codes + r * row_stride, d);
  }
}

void ScoreRowsF16(int64_t rows, int64_t d, const float* query,
                  const uint16_t* half, int64_t row_stride, float* out) {
  UM_CONTRACT(rows >= 0 && d >= 0 && row_stride >= d)
      << "ScoreRowsF16 rows=" << rows << " d=" << d
      << " stride=" << row_stride;
  UM_CONTRACT(rows == 0 ||
              (query != nullptr && half != nullptr && out != nullptr))
      << "ScoreRowsF16 got null operand";
  for (int64_t r = 0; r < rows; ++r) {
    out[r] = DotF32F16(query, half + r * row_stride, d);
  }
}

void DequantRowsI8(int64_t rows, int64_t d, const int8_t* codes,
                   int64_t row_stride, const float* scales, float* out) {
  UM_CONTRACT(rows >= 0 && d >= 0 && row_stride >= d)
      << "DequantRowsI8 rows=" << rows << " d=" << d
      << " stride=" << row_stride;
  UM_CONTRACT(rows == 0 ||
              (codes != nullptr && scales != nullptr && out != nullptr))
      << "DequantRowsI8 got null operand";
#if defined(UNIMATCH_KERNELS_X86)
  if (ActiveBackend() == Backend::kAvx2) {
    DequantRowsI8Avx2(rows, d, codes, row_stride, scales, out);
    return;
  }
#endif
  for (int64_t r = 0; r < rows; ++r) {
    const float s = scales[r];
    const int8_t* src = codes + r * row_stride;
    float* dst = out + r * d;
    for (int64_t j = 0; j < d; ++j) dst[j] = s * static_cast<float>(src[j]);
  }
}

// Frozen scalar reference paths for the quantized primitives. Like
// GemmReference, these are the fixed yardstick for tests and
// BENCH_quant.json — do not vectorize or multi-accumulate them.
float DotF32I8Reference(const float* a, const int8_t* codes, int64_t n) {
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) sum += a[i] * static_cast<float>(codes[i]);
  return sum;
}

float DotF32F16Reference(const float* a, const uint16_t* half, int64_t n) {
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) sum += a[i] * F16ToF32Scalar(half[i]);
  return sum;
}

uint16_t F32ToF16Reference(float value) { return F32ToF16Scalar(value); }

float F16ToF32Reference(uint16_t half) { return F16ToF32Scalar(half); }

// The exact serial gemm that shipped before the kernel layer (including the
// `av == 0` skip), kept as the equivalence/bench baseline. Do not "improve"
// it: its value is being the fixed pre-vectorization yardstick.
void GemmReference(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                   float alpha, const float* a, const float* b, float beta,
                   float* c) {
  if (!trans_a) {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else if (beta != 1.0f) {
        for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
      }
      const float* arow = a + i * k;
      if (!trans_b) {
        for (int64_t p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + p * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      } else {
        for (int64_t j = 0; j < n; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += alpha * acc;
        }
      }
    }
    return;
  }
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (!trans_b) {
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  }
}

}  // namespace unimatch::kernels
