#include "src/tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.h"
#include "src/tensor/kernels.h"
#include "src/util/contract.h"

namespace unimatch {

namespace {

// Floats needed to back `bytes` bytes in a Storage buffer.
int64_t FloatsForBytes(int64_t bytes) {
  return (bytes + static_cast<int64_t>(sizeof(float)) - 1) /
         static_cast<int64_t>(sizeof(float));
}

}  // namespace

const char* ScalarTypeName(ScalarType type) {
  switch (type) {
    case ScalarType::kF32:
      return "f32";
    case ScalarType::kF16:
      return "f16";
    case ScalarType::kI8:
      return "i8";
  }
  return "unknown";
}

int64_t ScalarTypeBytes(ScalarType type) {
  switch (type) {
    case ScalarType::kF32:
      return 4;
    case ScalarType::kF16:
      return 2;
    case ScalarType::kI8:
      return 1;
  }
  return 4;
}

QuantizedMatrix QuantizedMatrix::Quantize(const Tensor& m, ScalarType type) {
  UM_CHECK_EQ(m.rank(), 2) << "QuantizedMatrix expects a [N, d] matrix";
  UM_CHECK_FINITE(m) << "QuantizedMatrix::Quantize input";
  UM_SCOPED_TIMER("tensor.quant.quantize.ms");
  const int64_t rows = m.dim(0), cols = m.dim(1);
  UM_COUNTER_ADD("tensor.quant.rows_quantized", rows);

  QuantizedMatrix q;
  q.type_ = type;
  q.rows_ = rows;
  q.cols_ = cols;
  switch (type) {
    case ScalarType::kF32:
      q.f32_ = m;  // refcounted alias, no copy
      break;
    case ScalarType::kF16: {
      q.codes_ = Storage::Allocate(FloatsForBytes(rows * cols * 2));
      uint16_t* dst = reinterpret_cast<uint16_t*>(q.codes_.data());
      kernels::F32ToF16(rows * cols, m.data(), dst);
      break;
    }
    case ScalarType::kI8: {
      q.codes_ = Storage::Allocate(FloatsForBytes(rows * cols));
      q.scales_ = Storage::Allocate(rows);
      int8_t* dst = reinterpret_cast<int8_t*>(q.codes_.data());
      float* scales = q.scales_.data();
      const float* src = m.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float* row = src + r * cols;
        float maxabs = 0.0f;
        for (int64_t j = 0; j < cols; ++j) {
          maxabs = std::max(maxabs, std::fabs(row[j]));
        }
        int8_t* out = dst + r * cols;
        if (maxabs == 0.0f) {
          // All-zero row: scale 0 round-trips to exact zeros.
          scales[r] = 0.0f;
          std::fill(out, out + cols, static_cast<int8_t>(0));
          continue;
        }
        const float scale = maxabs / 127.0f;
        const float inv = 127.0f / maxabs;
        scales[r] = scale;
        for (int64_t j = 0; j < cols; ++j) {
          const long code = std::lroundf(row[j] * inv);
          out[j] = static_cast<int8_t>(
              std::clamp<long>(code, -127, 127));
        }
      }
      break;
    }
  }
  UM_GAUGE_SET("tensor.quant.bytes_per_row", q.bytes_per_row());
  return q;
}

Tensor QuantizedMatrix::Dequantize() const {
  UM_CHECK(valid()) << "Dequantize on an empty QuantizedMatrix";
  if (type_ == ScalarType::kF32) return f32_;
  Tensor out = Tensor::Empty({rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    DequantizeRow(r, out.data() + r * cols_);
  }
  return out;
}

void QuantizedMatrix::DequantizeRow(int64_t row, float* out) const {
  UM_CHECK_GE(row, 0);
  UM_CHECK_LT(row, rows_);
  UM_COUNTER_INC("tensor.quant.rows_dequantized");
  switch (type_) {
    case ScalarType::kF32: {
      const float* src = f32_.data() + row * cols_;
      std::copy(src, src + cols_, out);
      return;
    }
    case ScalarType::kF16:
      kernels::F16ToF32(cols_, f16_row(row), out);
      return;
    case ScalarType::kI8: {
      const int8_t* codes = i8_row(row);
      const float s = scales_.data()[row];
      for (int64_t j = 0; j < cols_; ++j) {
        out[j] = s * static_cast<float>(codes[j]);
      }
      return;
    }
  }
}

void QuantizedMatrix::DequantizeRows(int64_t r0, int64_t r1,
                                     float* out) const {
  UM_CHECK(valid()) << "DequantizeRows on an empty QuantizedMatrix";
  UM_CHECK_GE(r0, 0);
  UM_CHECK_LE(r0, r1);
  UM_CHECK_LE(r1, rows_);
  const int64_t rows = r1 - r0;
  if (rows == 0) return;
  UM_COUNTER_ADD("tensor.quant.rows_dequantized", rows);
  switch (type_) {
    case ScalarType::kF32: {
      const float* src = f32_.data() + r0 * cols_;
      std::copy(src, src + rows * cols_, out);
      return;
    }
    case ScalarType::kF16:
      // Rows are packed, so the block is one contiguous run of halves.
      kernels::F16ToF32(rows * cols_, f16_row(r0), out);
      return;
    case ScalarType::kI8:
      kernels::DequantRowsI8(rows, cols_, i8_row(r0), cols_,
                             scales_.data() + r0, out);
      return;
  }
}

float QuantizedMatrix::Score(int64_t row, const float* query) const {
  UM_CHECK_GE(row, 0);
  UM_CHECK_LT(row, rows_);
  switch (type_) {
    case ScalarType::kF32:
      return kernels::DotF32(query, f32_.data() + row * cols_, cols_);
    case ScalarType::kF16:
      return kernels::DotF32F16(query, f16_row(row), cols_);
    case ScalarType::kI8:
      return scales_.data()[row] *
             kernels::DotF32I8(query, i8_row(row), cols_);
  }
  return 0.0f;
}

void QuantizedMatrix::ScoreAllRows(const float* query, float* out) const {
  UM_CHECK(valid()) << "ScoreAllRows on an empty QuantizedMatrix";
  ScoreRows(0, rows_, query, out);
}

void QuantizedMatrix::ScoreRows(int64_t r0, int64_t r1, const float* query,
                                float* out) const {
  UM_CHECK(valid()) << "ScoreRows on an empty QuantizedMatrix";
  UM_CHECK_GE(r0, 0);
  UM_CHECK_LE(r0, r1);
  UM_CHECK_LE(r1, rows_);
  const int64_t rows = r1 - r0;
  if (rows == 0) return;
  switch (type_) {
    case ScalarType::kF32:
      for (int64_t r = 0; r < rows; ++r) {
        out[r] = kernels::DotF32(query, f32_.data() + (r0 + r) * cols_,
                                 cols_);
      }
      return;
    case ScalarType::kF16:
      kernels::ScoreRowsF16(rows, cols_, query, f16_row(r0), cols_, out);
      return;
    case ScalarType::kI8:
      kernels::ScoreRowsI8(rows, cols_, query, i8_row(r0), cols_,
                           scales_.data() + r0, out);
      return;
  }
}

float QuantizedMatrix::scale(int64_t row) const {
  UM_CHECK_GE(row, 0);
  UM_CHECK_LT(row, rows_);
  return type_ == ScalarType::kI8 ? scales_.data()[row] : 1.0f;
}

const int8_t* QuantizedMatrix::i8_row(int64_t row) const {
  UM_CHECK(type_ == ScalarType::kI8);
  UM_CHECK_GE(row, 0);
  UM_CHECK_LT(row, rows_);
  return reinterpret_cast<const int8_t*>(codes_.data()) + row * cols_;
}

const uint16_t* QuantizedMatrix::f16_row(int64_t row) const {
  UM_CHECK(type_ == ScalarType::kF16);
  UM_CHECK_GE(row, 0);
  UM_CHECK_LT(row, rows_);
  return reinterpret_cast<const uint16_t*>(codes_.data()) + row * cols_;
}

const float* QuantizedMatrix::f32_row(int64_t row) const {
  UM_CHECK(type_ == ScalarType::kF32);
  UM_CHECK_GE(row, 0);
  UM_CHECK_LT(row, rows_);
  return f32_.data() + row * cols_;
}

int64_t QuantizedMatrix::payload_bytes() const {
  switch (type_) {
    case ScalarType::kF32:
      return rows_ * cols_ * 4;
    case ScalarType::kF16:
      return rows_ * cols_ * 2;
    case ScalarType::kI8:
      return rows_ * cols_ + rows_ * static_cast<int64_t>(sizeof(float));
  }
  return 0;
}

double QuantizedMatrix::bytes_per_row() const {
  return rows_ == 0 ? 0.0
                    : static_cast<double>(payload_bytes()) /
                          static_cast<double>(rows_);
}

}  // namespace unimatch
