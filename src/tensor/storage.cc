#include "src/tensor/storage.h"

#include <new>

#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace unimatch {
namespace {

constexpr std::align_val_t kAlignment{64};

float* AlignedAlloc(int64_t n) {
  return static_cast<float*>(
      ::operator new(static_cast<size_t>(n) * sizeof(float), kAlignment));
}

void AlignedFree(float* p) { ::operator delete(p, kAlignment); }

}  // namespace

int64_t BufferPool::SizeClassFor(int64_t n) {
  UM_CHECK_GE(n, 0);
  int64_t c = kMinClassFloats;
  while (c < n) c <<= 1;
  return c;
}

BufferPool::~BufferPool() { Trim(); }

BufferPool* BufferPool::Global() {
  // Leaked on purpose: Storage handles may release buffers during static
  // destruction, after a normal singleton would already be gone.
  static BufferPool* pool = new BufferPool();
  return pool;
}

float* BufferPool::Acquire(int64_t n, int64_t* capacity) {
  const int64_t cls = SizeClassFor(n);
  *capacity = cls;
  const int64_t bytes = cls * static_cast<int64_t>(sizeof(float));
  acquires_.fetch_add(1, std::memory_order_relaxed);
  UM_COUNTER_INC("tensor.pool.acquires");

  float* p = nullptr;
  {
    MutexLock lock(&mu_);
    auto it = free_lists_.find(cls);
    if (it != free_lists_.end() && !it->second.empty()) {
      p = it->second.back();
      it->second.pop_back();
    }
  }
  if (p != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    [[maybe_unused]] const int64_t pooled =
        bytes_pooled_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
    UM_COUNTER_INC("tensor.pool.hits");
    UM_GAUGE_SET("tensor.pool.bytes_pooled", static_cast<double>(pooled));
  } else {
    p = AlignedAlloc(cls);
    misses_.fetch_add(1, std::memory_order_relaxed);
    UM_COUNTER_INC("tensor.pool.misses");
  }
  [[maybe_unused]] const int64_t live =
      bytes_live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UM_GAUGE_SET("tensor.pool.bytes_live", static_cast<double>(live));
  return p;
}

void BufferPool::Release(float* ptr, int64_t capacity) {
  UM_CHECK(ptr != nullptr);
  const int64_t bytes = capacity * static_cast<int64_t>(sizeof(float));
  releases_.fetch_add(1, std::memory_order_relaxed);
  [[maybe_unused]] const int64_t live =
      bytes_live_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  [[maybe_unused]] const int64_t pooled =
      bytes_pooled_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UM_GAUGE_SET("tensor.pool.bytes_live", static_cast<double>(live));
  UM_GAUGE_SET("tensor.pool.bytes_pooled", static_cast<double>(pooled));
  MutexLock lock(&mu_);
  free_lists_[capacity].push_back(ptr);
}

void BufferPool::Trim() {
  std::unordered_map<int64_t, std::vector<float*>> lists;
  {
    MutexLock lock(&mu_);
    lists.swap(free_lists_);
  }
  int64_t freed = 0;
  for (auto& [cls, ptrs] : lists) {
    freed += cls * static_cast<int64_t>(sizeof(float)) *
             static_cast<int64_t>(ptrs.size());
    for (float* p : ptrs) AlignedFree(p);
  }
  [[maybe_unused]] const int64_t pooled =
      bytes_pooled_.fetch_sub(freed, std::memory_order_relaxed) - freed;
  UM_GAUGE_SET("tensor.pool.bytes_pooled", static_cast<double>(pooled));
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.bytes_live = bytes_live_.load(std::memory_order_relaxed);
  s.bytes_pooled = bytes_pooled_.load(std::memory_order_relaxed);
  return s;
}

Storage::Impl::~Impl() {
  switch (mode) {
    case Mode::kPooled:
      BufferPool::Global()->Release(data, capacity);
      break;
    case Mode::kUnpooled:
      AlignedFree(data);
      break;
    case Mode::kBorrowed:
      break;
  }
}

Storage Storage::Allocate(int64_t n) {
  UM_CHECK_GE(n, 0);
  auto impl = std::make_shared<Impl>();
  impl->data = BufferPool::Global()->Acquire(n, &impl->capacity);
  impl->mode = Mode::kPooled;
  return Storage(std::move(impl), 0, n);
}

Storage Storage::AllocateUnpooled(int64_t n) {
  UM_CHECK_GE(n, 0);
  auto impl = std::make_shared<Impl>();
  impl->data = AlignedAlloc(n > 0 ? n : 1);
  impl->capacity = n;
  impl->mode = Mode::kUnpooled;
  return Storage(std::move(impl), 0, n);
}

Storage Storage::Borrow(float* data, int64_t n) {
  UM_CHECK_GE(n, 0);
  UM_CHECK(n == 0 || data != nullptr);
  auto impl = std::make_shared<Impl>();
  impl->data = data;
  impl->capacity = n;
  impl->mode = Mode::kBorrowed;
  return Storage(std::move(impl), 0, n);
}

Storage Storage::View(int64_t offset, int64_t n) const {
  UM_CHECK(impl_ != nullptr);
  UM_CHECK_GE(offset, 0);
  UM_CHECK_GE(n, 0);
  UM_CHECK_LE(offset + n, size_);
  return Storage(impl_, offset_ + offset, n);
}

}  // namespace unimatch
