// Raw numeric kernels over Tensor buffers.
//
// These are the hot loops behind the autograd ops in src/nn. They work on
// already-validated shapes; callers (the autograd layer) are responsible for
// shape checks and gradient bookkeeping.

#ifndef UNIMATCH_TENSOR_TENSOR_OPS_H_
#define UNIMATCH_TENSOR_TENSOR_OPS_H_

#include "src/tensor/tensor.h"

namespace unimatch {

/// C = alpha * op(A) x op(B) + beta * C, where op is optional transpose.
/// A is [m, k] (or [k, m] when trans_a), B is [k, n] (or [n, k] when
/// trans_b), C is [m, n]. Multi-threaded across rows for large m*n*k.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// Convenience wrapper with shape checks. Returns op(A) x op(B).
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// In-place form: writes op(A) x op(B) into the preallocated `*out`
/// ([m, n], every element overwritten). The workspace-reuse entry point for
/// recorded-program replay; MatMul is a thin allocate-and-call wrapper.
void MatMulInto(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                Tensor* out);

/// Batched matmul on rank-3 tensors: out[b] = op(A[b]) x op(B[b]).
Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
                   bool trans_b = false);

/// Row-wise softmax of a [m, n] matrix (numerically stabilized).
void SoftmaxRows(const Tensor& in, Tensor* out);

/// Row-wise log-softmax of a [m, n] matrix.
void LogSoftmaxRows(const Tensor& in, Tensor* out);

/// L2-normalizes each row of a [m, n] matrix. Stores the pre-normalization
/// row norms (clamped to >= eps) into `norms` ([m]) if non-null.
void L2NormalizeRows(const Tensor& in, Tensor* out, Tensor* norms,
                     float eps = 1e-12f);

/// out[i] = sum_j in[i, j] for an [m, n] matrix -> [m].
void ReduceSumRows(const Tensor& in, Tensor* out);

/// out[j] = sum_i in[i, j] for an [m, n] matrix -> [n].
void ReduceSumCols(const Tensor& in, Tensor* out);

}  // namespace unimatch

#endif  // UNIMATCH_TENSOR_TENSOR_OPS_H_
