// Pooled, aligned, refcounted float buffers — the substrate under Tensor.
//
// Storage replaces the original std::shared_ptr<std::vector<float>> tensor
// backing. It separates three concerns that the vector conflated:
//
//  * Allocation: buffers come from a process-wide size-class BufferPool
//    (64-byte aligned, so the AVX2 kernels see aligned rows), and return to
//    the pool when the last Storage handle drops. Steady-state training
//    steps therefore recycle the same few buffers instead of hitting the
//    heap thousands of times per step.
//  * Lifetime: Storage is a refcounted value type; copies alias the same
//    underlying buffer. Long-lived parameters opt out of pooling with
//    AllocateUnpooled (their buffers would otherwise pin pool size classes
//    forever), and Borrow wraps caller-owned memory without taking
//    ownership (the caller must outlive every borrowed handle).
//  * Addressing: a Storage carries an (offset, size) window into its
//    buffer, so zero-copy views (Tensor::Row / Slice) are just new handles
//    with a different window. SharesBufferWith compares buffers, not
//    windows — two disjoint rows of one matrix still share storage.
//
// Thread safety: BufferPool is fully thread-safe (free lists behind an
// annotated um::Mutex at lockrank::kBufferPool — compile-time checked under
// -Wthread-safety, see docs/STATIC_ANALYSIS.md — plus atomic stats).
// Storage handles follow shared_ptr rules — concurrent reads of distinct
// handles to one buffer are fine, mutating one handle needs external
// synchronization. Note the rank: releasing a pooled buffer while holding
// any higher-ranked lock (prefetcher/frontend/obs) trips the lock-rank
// validator by design — heavy frees do not belong under those locks.

#ifndef UNIMATCH_TENSOR_STORAGE_H_
#define UNIMATCH_TENSOR_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/util/mutex.h"

namespace unimatch {

/// Thread-safe size-class recycler for 64-byte-aligned float buffers.
///
/// Requests are rounded up to the next power-of-two float count (minimum
/// 64 floats = one cache line of lanes), so a handful of classes serve all
/// hot-path shapes and a released buffer is immediately reusable by any
/// request of the same class.
class BufferPool {
 public:
  /// Exact, always-on allocation counters (independent of the obs runtime
  /// toggle; benches and tests read these directly).
  struct Stats {
    int64_t acquires = 0;  ///< total Acquire() calls
    int64_t hits = 0;      ///< acquires served from a free list
    int64_t misses = 0;    ///< acquires that hit the heap
    int64_t releases = 0;  ///< buffers returned (to the pool or the heap)
    int64_t bytes_live = 0;    ///< bytes currently handed out to callers
    int64_t bytes_pooled = 0;  ///< bytes currently parked in free lists
  };

  BufferPool() = default;
  ~BufferPool() UM_EXCLUDES(mu_);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Process-wide pool used by Storage::Allocate. Never destroyed.
  static BufferPool* Global();

  /// Returns a 64-byte-aligned buffer of at least `n` floats; `*capacity`
  /// receives the actual size-class capacity (pass it back to Release).
  /// Contents are unspecified — callers zero-fill if they need zeros.
  float* Acquire(int64_t n, int64_t* capacity) UM_EXCLUDES(mu_);

  /// Returns a buffer obtained from Acquire to the free lists.
  void Release(float* ptr, int64_t capacity) UM_EXCLUDES(mu_);

  /// Frees every buffer parked in the free lists (outstanding buffers are
  /// untouched). Mainly for tests and memory-pressure hooks.
  void Trim() UM_EXCLUDES(mu_);

  Stats stats() const;

  /// Smallest size class, in floats.
  static constexpr int64_t kMinClassFloats = 64;
  /// Rounds a float count up to its size class (next power of two, at
  /// least kMinClassFloats).
  static int64_t SizeClassFor(int64_t n);

 private:
  mutable Mutex mu_{lockrank::kBufferPool, "tensor.pool"};
  std::unordered_map<int64_t, std::vector<float*>> free_lists_
      UM_GUARDED_BY(mu_);

  std::atomic<int64_t> acquires_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> releases_{0};
  std::atomic<int64_t> bytes_live_{0};
  std::atomic<int64_t> bytes_pooled_{0};
};

/// Refcounted handle to an (offset, size) window of an aligned float
/// buffer. Default-constructed handles are empty (data() == nullptr).
class Storage {
 public:
  Storage() = default;

  /// `n` floats from the global BufferPool. Contents are unspecified.
  static Storage Allocate(int64_t n);
  /// `n` floats straight from the heap; freed (not pooled) on release.
  /// For long-lived parameters that would otherwise pin pool classes.
  static Storage AllocateUnpooled(int64_t n);
  /// Non-owning view over caller-owned memory. The pointee must outlive
  /// every handle (and every Tensor) derived from this Storage.
  static Storage Borrow(float* data, int64_t n);

  /// Narrowed window into the same buffer: `n` floats starting `offset`
  /// floats into this window. Shares (and extends the lifetime of) the
  /// underlying buffer.
  Storage View(int64_t offset, int64_t n) const;

  float* data() const { return impl_ ? impl_->data + offset_ : nullptr; }
  int64_t size() const { return size_; }
  bool valid() const { return impl_ != nullptr; }

  /// True when both handles window the same underlying buffer (even if the
  /// windows are disjoint).
  bool SharesBufferWith(const Storage& other) const {
    return impl_ != nullptr && impl_ == other.impl_;
  }

  /// True when this handle is the only reference to its buffer — the
  /// gradient move-accumulation fast path keys off this.
  bool unique() const { return impl_ != nullptr && impl_.use_count() == 1; }

 private:
  enum class Mode { kPooled, kUnpooled, kBorrowed };

  struct Impl {
    float* data = nullptr;
    int64_t capacity = 0;  ///< size class (pooled) or exact size (unpooled)
    Mode mode = Mode::kBorrowed;
    ~Impl();
  };

  Storage(std::shared_ptr<Impl> impl, int64_t offset, int64_t size)
      : impl_(std::move(impl)), offset_(offset), size_(size) {}

  std::shared_ptr<Impl> impl_;
  int64_t offset_ = 0;
  int64_t size_ = 0;
};

}  // namespace unimatch

#endif  // UNIMATCH_TENSOR_STORAGE_H_
