#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "src/tensor/kernels.h"
#include "src/util/parallel.h"

namespace unimatch {

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    UM_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(ShapeNumel(shape_)),
      storage_(Storage::Allocate(numel_)) {
  std::memset(storage_.data(), 0, static_cast<size_t>(numel_) * sizeof(float));
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(ShapeNumel(shape_)) {
  UM_CHECK_EQ(numel_, static_cast<int64_t>(values.size()));
  storage_ = Storage::Allocate(numel_);
  std::memcpy(storage_.data(), values.data(),
              static_cast<size_t>(numel_) * sizeof(float));
}

Tensor Tensor::Empty(Shape shape) {
  Tensor t{NoAllocTag{}};
  t.shape_ = std::move(shape);
  t.numel_ = ShapeNumel(t.shape_);
  t.storage_ = Storage::Allocate(t.numel_);
  return t;
}

Tensor Tensor::ZerosUnpooled(Shape shape) {
  Tensor t{NoAllocTag{}};
  t.shape_ = std::move(shape);
  t.numel_ = ShapeNumel(t.shape_);
  t.storage_ = Storage::AllocateUnpooled(t.numel_);
  std::memset(t.storage_.data(), 0,
              static_cast<size_t>(t.numel_) * sizeof(float));
  return t;
}

Tensor Tensor::FromExternal(float* data, Shape shape) {
  Tensor t{NoAllocTag{}};
  t.shape_ = std::move(shape);
  t.numel_ = ShapeNumel(t.shape_);
  t.storage_ = Storage::Borrow(data, t.numel_);
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Empty(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(Shape shape, float stddev, Rng* rng) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Gaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::Uniform(Shape shape, float lo, float hi, Rng* rng) {
  Tensor t = Empty(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->UniformDouble(lo, hi));
  }
  return t;
}

void Tensor::Fill(float value) {
  float* p = data();
  std::fill(p, p + numel_, value);
}

void Tensor::CopyFrom(const Tensor& other) {
  UM_CHECK(same_shape(other));
  std::memmove(data(), other.data(),
               static_cast<size_t>(numel_) * sizeof(float));
}

Tensor Tensor::Clone() const {
  Tensor t = Empty(shape_);
  std::memcpy(t.data(), data(), static_cast<size_t>(numel_) * sizeof(float));
  return t;
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  UM_CHECK_EQ(ShapeNumel(new_shape), numel_);
  Tensor t{NoAllocTag{}};
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.storage_ = storage_;
  return t;
}

Tensor Tensor::Row(int64_t i) const {
  UM_CHECK_GE(rank(), 1);
  UM_CHECK_GE(i, 0);
  UM_CHECK_LT(i, shape_[0]);
  Shape row_shape(shape_.begin() + 1, shape_.end());
  const int64_t stride = ShapeNumel(row_shape);
  Tensor t{NoAllocTag{}};
  t.shape_ = std::move(row_shape);
  t.numel_ = stride;
  t.storage_ = storage_.View(i * stride, stride);
  return t;
}

Tensor Tensor::Slice(int64_t begin, int64_t end) const {
  UM_CHECK_GE(rank(), 1);
  UM_CHECK_GE(begin, 0);
  UM_CHECK_LE(begin, end);
  UM_CHECK_LE(end, shape_[0]);
  Shape slice_shape = shape_;
  slice_shape[0] = end - begin;
  const int64_t stride = shape_[0] == 0 ? 0 : numel_ / shape_[0];
  Tensor t{NoAllocTag{}};
  t.shape_ = std::move(slice_shape);
  t.numel_ = (end - begin) * stride;
  t.storage_ = storage_.View(begin * stride, t.numel_);
  return t;
}

void Tensor::AddInPlace(const Tensor& other, float alpha) {
  UM_CHECK(same_shape(other));
  // Elementwise with disjoint ranges: region sharding is bitwise-exact.
  RegionParallelForRange(0, numel_, [&](int64_t lo, int64_t hi) {
    kernels::AxpyF32(hi - lo, alpha, other.data() + lo, data() + lo);
  });
}

void Tensor::ScaleInPlace(float alpha) {
  RegionParallelForRange(0, numel_, [&](int64_t lo, int64_t hi) {
    kernels::ScaleAddF32(hi - lo, 0.0f, data() + lo, alpha, data() + lo);
  });
}

double Tensor::Sum() const {
  double s = 0.0;
  const float* p = data();
  for (int64_t i = 0; i < numel_; ++i) s += p[i];
  return s;
}

double Tensor::Mean() const { return numel_ == 0 ? 0.0 : Sum() / numel_; }

float Tensor::Min() const {
  UM_CHECK_GT(numel_, 0);
  const float* p = data();
  return *std::min_element(p, p + numel_);
}

float Tensor::Max() const {
  UM_CHECK_GT(numel_, 0);
  const float* p = data();
  return *std::max_element(p, p + numel_);
}

double Tensor::L2Norm() const {
  double s = 0.0;
  const float* p = data();
  for (int64_t i = 0; i < numel_; ++i) s += static_cast<double>(p[i]) * p[i];
  return std::sqrt(s);
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel_, max_elems);
  const float* p = data();
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << p[i];
  }
  if (n < numel_) os << ", ...";
  os << '}';
  return os.str();
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace unimatch
