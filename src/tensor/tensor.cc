#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/tensor/kernels.h"

namespace unimatch {

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    UM_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(ShapeNumel(shape_)),
      storage_(std::make_shared<std::vector<float>>(numel_, 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(ShapeNumel(shape_)) {
  UM_CHECK_EQ(numel_, static_cast<int64_t>(values.size()));
  storage_ = std::make_shared<std::vector<float>>(std::move(values));
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(Shape shape, float stddev, Rng* rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->Gaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::Uniform(Shape shape, float lo, float hi, Rng* rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng->UniformDouble(lo, hi));
  }
  return t;
}

void Tensor::Fill(float value) {
  std::fill(storage_->begin(), storage_->end(), value);
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return t;
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  UM_CHECK_EQ(ShapeNumel(new_shape), numel_);
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.storage_ = storage_;
  return t;
}

void Tensor::AddInPlace(const Tensor& other, float alpha) {
  UM_CHECK(same_shape(other));
  kernels::AxpyF32(numel_, alpha, other.data(), data());
}

void Tensor::ScaleInPlace(float alpha) {
  kernels::ScaleAddF32(numel_, 0.0f, data(), alpha, data());
}

double Tensor::Sum() const {
  double s = 0.0;
  const float* p = data();
  for (int64_t i = 0; i < numel_; ++i) s += p[i];
  return s;
}

double Tensor::Mean() const { return numel_ == 0 ? 0.0 : Sum() / numel_; }

float Tensor::Min() const {
  UM_CHECK_GT(numel_, 0);
  return *std::min_element(storage_->begin(), storage_->end());
}

float Tensor::Max() const {
  UM_CHECK_GT(numel_, 0);
  return *std::max_element(storage_->begin(), storage_->end());
}

double Tensor::L2Norm() const {
  double s = 0.0;
  const float* p = data();
  for (int64_t i = 0; i < numel_; ++i) s += static_cast<double>(p[i]) * p[i];
  return std::sqrt(s);
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel_, max_elems);
  const float* p = data();
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << p[i];
  }
  if (n < numel_) os << ", ...";
  os << '}';
  return os.str();
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace unimatch
