// Quantized embedding-table storage — the memory-compression layer under
// the serving stack.
//
// At deployment scale the embedding tables dominate the memory bill:
// hundreds of millions of users times d float32 lanes. A QuantizedMatrix
// stores the same [N, d] matrix in one of three layouts:
//
//   kF32  the float Tensor itself (refcounted alias, zero conversion) —
//         the uniform-API passthrough;
//   kF16  IEEE-754 binary16 codes, 2 bytes/lane (~2x smaller, ~2^-11
//         relative error — negligible for l2-normalized embeddings);
//   kI8   per-row-scaled int8 codes, 1 byte/lane + one float scale per row
//         (~3-4x smaller at the repo's dims; the row scale is
//         max|x|/127, so a row round-trips within scale/2 per lane).
//
// Codes live in pool-backed Storage buffers (src/tensor/storage.h), so the
// base pointer is 64-byte aligned for the SIMD kernels and the buffers
// recycle through the same BufferPool as every other tensor; rows are
// packed (stride = d codes) because compression, not per-row alignment, is
// the point — the int8/f16 kernels use unaligned loads.
//
// Scoring is asymmetric: queries stay float32 and are scored directly
// against the codes (kernels::DotF32I8 / DotF32F16), so there is no query
// quantization error. Pointer access to rows goes through the typed
// i8_row/f16_row accessors — reinterpret_casting between quantized and
// float row pointers outside src/tensor is a lint error (quant-cast rule,
// tools/lint.py).
//
// Thread safety: a QuantizedMatrix is immutable after Quantize; concurrent
// reads need no synchronization (same rules as a const Tensor).

#ifndef UNIMATCH_TENSOR_QUANT_H_
#define UNIMATCH_TENSOR_QUANT_H_

#include <cstdint>
#include <string>

#include "src/tensor/storage.h"
#include "src/tensor/tensor.h"

namespace unimatch {

/// Storage element type of an embedding table (or quantized index).
enum class ScalarType {
  kF32 = 0,
  kF16 = 1,
  kI8 = 2,
};

/// "f32", "f16" or "i8".
const char* ScalarTypeName(ScalarType type);

/// Bytes per lane of a scalar type (4, 2, 1).
int64_t ScalarTypeBytes(ScalarType type);

/// Immutable quantized view of a [N, d] float matrix.
class QuantizedMatrix {
 public:
  /// Invalid (empty) matrix; Quantize is the only way to a valid one.
  QuantizedMatrix() = default;

  /// Quantizes `m` ([N, d], finite) into `type` storage. kF32 aliases the
  /// tensor without copying; kF16/kI8 allocate pooled code buffers.
  static QuantizedMatrix Quantize(const Tensor& m, ScalarType type);

  bool valid() const { return rows_ > 0; }
  ScalarType type() const { return type_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Full decompression back to float32 (tests, parity checks).
  Tensor Dequantize() const;

  /// Decompresses one row into `out` (`cols()` floats).
  void DequantizeRow(int64_t row, float* out) const;

  /// Decompresses rows [r0, r1) into `out` (packed, (r1 - r0) * cols()
  /// floats). Row-for-row identical to DequantizeRow — the blocked-decode
  /// path behind batched quantized search, which dequantizes each catalog
  /// block once and scores the whole query batch against the floats.
  void DequantizeRows(int64_t r0, int64_t r1, float* out) const;

  /// Inner product of the float query (`cols()` floats) against row `row`,
  /// dequantization folded into the kernel (one multiply by the row scale).
  float Score(int64_t row, const float* query) const;

  /// out[r] = Score(r, query) for every row — the flat-scan fast path.
  void ScoreAllRows(const float* query, float* out) const;

  /// out[i] = Score(r0 + i, query) for rows [r0, r1) — the blocked-scan
  /// path behind batched search. Row-for-row identical to ScoreAllRows
  /// (the row kernels score each row independently).
  void ScoreRows(int64_t r0, int64_t r1, const float* query,
                 float* out) const;

  /// Per-row int8 scale (kI8 only; an all-zero row has scale 0). kF32/kF16
  /// rows report 1.
  float scale(int64_t row) const;

  /// Typed row pointers. Only the accessor matching type() is valid.
  const int8_t* i8_row(int64_t row) const;
  const uint16_t* f16_row(int64_t row) const;
  const float* f32_row(int64_t row) const;

  /// Total payload: codes plus per-row scales (excludes the handle itself).
  int64_t payload_bytes() const;

  /// payload_bytes() / rows — the bytes-per-user figure of BENCH_quant.json.
  double bytes_per_row() const;

 private:
  ScalarType type_ = ScalarType::kF32;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  Tensor f32_;        // kF32: refcounted alias of the source matrix
  Storage codes_;     // kF16/kI8: packed codes, reinterpreted per type
  Storage scales_;    // kI8: one float scale per row
};

}  // namespace unimatch

#endif  // UNIMATCH_TENSOR_QUANT_H_
