#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.h"
#include "src/util/contract.h"
#include "src/util/threadpool.h"

namespace unimatch {

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  UM_COUNTER_INC("tensor.gemm.calls");
  UM_COUNTER_ADD("tensor.gemm.flops", 2 * m * n * k);
  // Handle the transposed-A cases by explicit indexing here (they are rare:
  // only used in backward passes), and dispatch the two common layouts to the
  // threaded row kernel.
  if (!trans_a) {
    auto run = [&](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) {
        float* crow = c + i * n;
        if (beta == 0.0f) {
          std::fill(crow, crow + n, 0.0f);
        } else if (beta != 1.0f) {
          for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
        }
        const float* arow = a + i * k;
        if (!trans_b) {
          for (int64_t p = 0; p < k; ++p) {
            const float av = alpha * arow[p];
            if (av == 0.0f) continue;
            const float* brow = b + p * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        } else {
          for (int64_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float acc = 0.0f;
            for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
            crow[j] += alpha * acc;
          }
        }
      }
    };
    const int64_t flops = m * n * k;
    if (flops > (1 << 18)) {
      ThreadPool::Global()->ParallelFor(
          0, m, [&](int64_t i) { run(i, i + 1); }, /*min_shard=*/8);
    } else {
      run(0, m);
    }
    return;
  }

  // trans_a: A is [k, m].
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (!trans_b) {
    // C[i,j] += alpha * sum_p A[p,i] * B[p,j].
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  } else {
    // A is [k, m], B is [n, k]: C[i,j] += alpha * sum_p A[p,i] * B[j,p].
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
        crow[j] += alpha * acc;
      }
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  UM_COUNTER_INC("tensor.matmul.calls");
  UM_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2, a, b)
      << "MatMul needs rank-2 operands";
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t ka = trans_a ? a.dim(0) : a.dim(1);
  const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  UM_CHECK_SHAPE(ka == kb, a, b)
      << "MatMul inner dimensions (trans_a=" << trans_a
      << ", trans_b=" << trans_b << ")";
  Tensor c({m, n});
  Gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                   bool trans_b) {
  UM_COUNTER_INC("tensor.batch_matmul.calls");
  UM_CHECK_SHAPE(a.rank() == 3 && b.rank() == 3 && a.dim(0) == b.dim(0), a, b)
      << "BatchMatMul needs rank-3 operands with equal batch dims";
  const int64_t bs = a.dim(0);
  const int64_t m = trans_a ? a.dim(2) : a.dim(1);
  const int64_t ka = trans_a ? a.dim(1) : a.dim(2);
  const int64_t kb = trans_b ? b.dim(2) : b.dim(1);
  const int64_t n = trans_b ? b.dim(1) : b.dim(2);
  UM_CHECK_SHAPE(ka == kb, a, b)
      << "BatchMatMul inner dimensions (trans_a=" << trans_a
      << ", trans_b=" << trans_b << ")";
  Tensor c({bs, m, n});
  const int64_t a_stride = a.dim(1) * a.dim(2);
  const int64_t b_stride = b.dim(1) * b.dim(2);
  const int64_t c_stride = m * n;
  for (int64_t i = 0; i < bs; ++i) {
    Gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data() + i * a_stride,
         b.data() + i * b_stride, 0.0f, c.data() + i * c_stride);
  }
  return c;
}

void SoftmaxRows(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "SoftmaxRows input shape "
                              << contract::ShapeOf(in);
  UM_CHECK_SHAPE(in.same_shape(*out), in, *out) << "SoftmaxRows";
  const int64_t m = in.dim(0), n = in.dim(1);
  for (int64_t i = 0; i < m; ++i) {
    const float* x = in.data() + i * n;
    float* y = out->data() + i * n;
    float mx = x[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      y[j] = std::exp(x[j] - mx);
      denom += y[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < n; ++j) y[j] *= inv;
  }
}

void LogSoftmaxRows(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "LogSoftmaxRows input shape "
                              << contract::ShapeOf(in);
  UM_CHECK_SHAPE(in.same_shape(*out), in, *out) << "LogSoftmaxRows";
  const int64_t m = in.dim(0), n = in.dim(1);
  for (int64_t i = 0; i < m; ++i) {
    const float* x = in.data() + i * n;
    float* y = out->data() + i * n;
    float mx = x[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) denom += std::exp(x[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    for (int64_t j = 0; j < n; ++j) y[j] = x[j] - lse;
  }
}

void L2NormalizeRows(const Tensor& in, Tensor* out, Tensor* norms, float eps) {
  UM_CONTRACT(in.rank() == 2) << "L2NormalizeRows input shape "
                              << contract::ShapeOf(in);
  UM_CHECK_SHAPE(in.same_shape(*out), in, *out) << "L2NormalizeRows";
  const int64_t m = in.dim(0), n = in.dim(1);
  if (norms != nullptr) {
    UM_CHECK_SHAPE(norms->numel() == m, in, *norms) << "L2NormalizeRows norms";
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* x = in.data() + i * n;
    float* y = out->data() + i * n;
    double ss = 0.0;
    for (int64_t j = 0; j < n; ++j) ss += static_cast<double>(x[j]) * x[j];
    const float norm = std::max(static_cast<float>(std::sqrt(ss)), eps);
    if (norms != nullptr) norms->at(i) = norm;
    const float inv = 1.0f / norm;
    for (int64_t j = 0; j < n; ++j) y[j] = x[j] * inv;
  }
}

void ReduceSumRows(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "ReduceSumRows input shape "
                              << contract::ShapeOf(in);
  const int64_t m = in.dim(0), n = in.dim(1);
  UM_CHECK_SHAPE(out->numel() == m, in, *out) << "ReduceSumRows";
  for (int64_t i = 0; i < m; ++i) {
    const float* x = in.data() + i * n;
    double s = 0.0;
    for (int64_t j = 0; j < n; ++j) s += x[j];
    out->at(i) = static_cast<float>(s);
  }
}

void ReduceSumCols(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "ReduceSumCols input shape "
                              << contract::ShapeOf(in);
  const int64_t m = in.dim(0), n = in.dim(1);
  UM_CHECK_SHAPE(out->numel() == n, in, *out) << "ReduceSumCols";
  out->SetZero();
  for (int64_t i = 0; i < m; ++i) {
    const float* x = in.data() + i * n;
    float* y = out->data();
    for (int64_t j = 0; j < n; ++j) y[j] += x[j];
  }
}

}  // namespace unimatch
