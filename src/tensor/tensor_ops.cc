#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "src/obs/obs.h"
#include "src/tensor/kernels.h"
#include "src/util/contract.h"
#include "src/util/parallel.h"
#include "src/util/threadpool.h"

namespace unimatch {

namespace {

// Above this many multiply-adds a Gemm call shards row blocks across the
// global pool; below it the dispatch overhead would dominate.
constexpr int64_t kGemmParallelFlops = 1 << 18;
// Rows per shard. Multiples of the micro-kernel's 4-row tile so parallel
// splits never break register tiling.
constexpr int64_t kGemmRowBlock = 32;

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  UM_COUNTER_INC("tensor.gemm.calls");
  // Widen before multiplying so the flop estimate cannot overflow a narrower
  // intermediate even if the dimension types ever shrink.
  const int64_t flops = int64_t{2} * m * n * k;
  UM_COUNTER_ADD("tensor.gemm.flops", flops);
  UM_CONTRACT(m >= 0 && n >= 0 && k >= 0)
      << "Gemm dims m=" << m << " n=" << n << " k=" << k;
  if (m == 0 || n == 0) return;

  // All four layouts run on the vectorized row kernels (src/tensor/kernels):
  // A's logical element (i, p) maps to a[i * row_stride + p * col_stride],
  // and trans_b selects between the axpy ([k, n] B) and dot ([n, k] B)
  // kernel shapes. Every case — including the transposed-A backward layouts
  // that used to be serial — shards C row blocks across the pool.
  const int64_t a_row_stride = trans_a ? 1 : k;
  const int64_t a_col_stride = trans_a ? m : 1;
  auto run_rows = [&](int64_t r0, int64_t r1) {
    if (!trans_b) {
      kernels::GemmRowsAxpy(r0, r1, n, k, alpha, a, a_row_stride, a_col_stride,
                            b, beta, c);
    } else {
      kernels::GemmRowsDot(r0, r1, n, k, alpha, a, a_row_stride, a_col_stride,
                           b, beta, c);
    }
  };
  if (flops > kGemmParallelFlops && m > kGemmRowBlock) {
    const int64_t num_blocks = (m + kGemmRowBlock - 1) / kGemmRowBlock;
    ThreadPool::Global()->ParallelFor(
        0, num_blocks,
        [&](int64_t block) {
          const int64_t r0 = block * kGemmRowBlock;
          run_rows(r0, std::min(m, r0 + kGemmRowBlock));
        },
        /*min_shard=*/1);
  } else {
    run_rows(0, m);
  }
}

void MatMulInto(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b,
                Tensor* out) {
  UM_COUNTER_INC("tensor.matmul.calls");
  UM_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2, a, b)
      << "MatMul needs rank-2 operands";
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t ka = trans_a ? a.dim(0) : a.dim(1);
  const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  UM_CHECK_SHAPE(ka == kb, a, b)
      << "MatMul inner dimensions (trans_a=" << trans_a
      << ", trans_b=" << trans_b << ")";
  UM_CHECK_SHAPE(out->rank() == 2 && out->dim(0) == m && out->dim(1) == n, a,
                 *out)
      << "MatMulInto output";
  Gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), b.data(), 0.0f,
       out->data());
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  // Gemm with beta == 0 writes every C element without reading it, so the
  // output can skip the zero-fill.
  Tensor c = Tensor::Empty({m, n});
  MatMulInto(a, b, trans_a, trans_b, &c);
  return c;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b, bool trans_a,
                   bool trans_b) {
  UM_COUNTER_INC("tensor.batch_matmul.calls");
  UM_CHECK_SHAPE(a.rank() == 3 && b.rank() == 3 && a.dim(0) == b.dim(0), a, b)
      << "BatchMatMul needs rank-3 operands with equal batch dims";
  const int64_t bs = a.dim(0);
  const int64_t m = trans_a ? a.dim(2) : a.dim(1);
  const int64_t ka = trans_a ? a.dim(1) : a.dim(2);
  const int64_t kb = trans_b ? b.dim(2) : b.dim(1);
  const int64_t n = trans_b ? b.dim(1) : b.dim(2);
  UM_CHECK_SHAPE(ka == kb, a, b)
      << "BatchMatMul inner dimensions (trans_a=" << trans_a
      << ", trans_b=" << trans_b << ")";
  Tensor c = Tensor::Empty({bs, m, n});
  const int64_t a_stride = a.dim(1) * a.dim(2);
  const int64_t b_stride = b.dim(1) * b.dim(2);
  const int64_t c_stride = m * n;
  for (int64_t i = 0; i < bs; ++i) {
    Gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data() + i * a_stride,
         b.data() + i * b_stride, 0.0f, c.data() + i * c_stride);
  }
  return c;
}

void SoftmaxRows(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "SoftmaxRows input shape "
                              << contract::ShapeOf(in);
  UM_CHECK_SHAPE(in.same_shape(*out), in, *out) << "SoftmaxRows";
  const int64_t m = in.dim(0), n = in.dim(1);
  // Rows are independent, so region sharding is bitwise-exact.
  RegionParallelFor(0, m, [&](int64_t i) {
    const float* x = in.data() + i * n;
    float* y = out->data() + i * n;
    float mx = x[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      y[j] = std::exp(x[j] - mx);
      denom += y[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < n; ++j) y[j] *= inv;
  });
}

void LogSoftmaxRows(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "LogSoftmaxRows input shape "
                              << contract::ShapeOf(in);
  UM_CHECK_SHAPE(in.same_shape(*out), in, *out) << "LogSoftmaxRows";
  const int64_t m = in.dim(0), n = in.dim(1);
  // Rows are independent, so region sharding is bitwise-exact.
  RegionParallelFor(0, m, [&](int64_t i) {
    const float* x = in.data() + i * n;
    float* y = out->data() + i * n;
    float mx = x[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) denom += std::exp(x[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    for (int64_t j = 0; j < n; ++j) y[j] = x[j] - lse;
  });
}

void L2NormalizeRows(const Tensor& in, Tensor* out, Tensor* norms, float eps) {
  UM_CONTRACT(in.rank() == 2) << "L2NormalizeRows input shape "
                              << contract::ShapeOf(in);
  UM_CHECK_SHAPE(in.same_shape(*out), in, *out) << "L2NormalizeRows";
  const int64_t m = in.dim(0), n = in.dim(1);
  if (norms != nullptr) {
    UM_CHECK_SHAPE(norms->numel() == m, in, *norms) << "L2NormalizeRows norms";
  }
  RegionParallelFor(0, m, [&](int64_t i) {
    const float norm =
        kernels::L2NormalizeF32(n, in.data() + i * n, out->data() + i * n, eps);
    if (norms != nullptr) norms->at(i) = norm;
  });
}

void ReduceSumRows(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "ReduceSumRows input shape "
                              << contract::ShapeOf(in);
  const int64_t m = in.dim(0), n = in.dim(1);
  UM_CHECK_SHAPE(out->numel() == m, in, *out) << "ReduceSumRows";
  for (int64_t i = 0; i < m; ++i) {
    const float* x = in.data() + i * n;
    double s = 0.0;
    for (int64_t j = 0; j < n; ++j) s += x[j];
    out->at(i) = static_cast<float>(s);
  }
}

void ReduceSumCols(const Tensor& in, Tensor* out) {
  UM_CONTRACT(in.rank() == 2) << "ReduceSumCols input shape "
                              << contract::ShapeOf(in);
  const int64_t m = in.dim(0), n = in.dim(1);
  UM_CHECK_SHAPE(out->numel() == n, in, *out) << "ReduceSumCols";
  out->SetZero();
  for (int64_t i = 0; i < m; ++i) {
    const float* x = in.data() + i * n;
    float* y = out->data();
    for (int64_t j = 0; j < n; ++j) y[j] += x[j];
  }
}

}  // namespace unimatch
