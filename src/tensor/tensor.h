// Dense row-major float32 tensor.
//
// This is the numeric substrate for the from-scratch neural-network library
// (src/nn) that replaces the paper's TensorFlow dependency. Tensors are
// value types with shared storage: copying a Tensor aliases the same buffer
// (like a TF/PyTorch handle); use Clone() for a deep copy.
//
// Storage comes from the 64-byte-aligned size-class BufferPool (see
// src/tensor/storage.h), so hot loops recycle buffers instead of hitting
// the heap, and the AVX2 kernels see aligned base pointers. Beyond the
// whole-buffer handle there are zero-copy views:
//
//   t.Reshaped(shape)   same elements, different shape
//   t.Row(i)            row i of a rank>=2 tensor (drops the leading dim)
//   t.Slice(b, e)       rows [b, e) along the leading dim
//   Tensor::FromExternal(ptr, shape)   borrowed view of caller-owned memory
//
// Views alias the parent's buffer — shares_storage() is true between any
// two of them — and keep it alive (except FromExternal, which borrows and
// must not outlive the pointee). Tensor::Empty skips the zero-fill of the
// ordinary constructor; use it only when every element is overwritten
// before being read.
//
// Supported ranks are 0..3, which covers everything the two-tower model
// needs: scalars (losses), [B] vectors, [B, d] matrices and [B, L, d]
// sequence batches.

#ifndef UNIMATCH_TENSOR_TENSOR_H_
#define UNIMATCH_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/storage.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace unimatch {

/// Tensor shape: a small vector of dimension sizes.
using Shape = std::vector<int64_t>;

/// Returns the number of elements of a shape (1 for rank-0).
int64_t ShapeNumel(const Shape& shape);

/// "[2, 3, 16]"
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  /// An empty (rank-0, single element, zero) tensor.
  Tensor() : Tensor(Shape{}) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents (size must match).
  Tensor(Shape shape, std::vector<float> values);

  /// ----- factory helpers -----
  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  /// Uninitialized tensor: pooled storage, contents unspecified. Only for
  /// outputs whose every element is written before it is read — backward
  /// closures that accumulate into fresh tensors need Zeros/Tensor(shape).
  static Tensor Empty(Shape shape);
  /// Zero-initialized tensor whose storage bypasses the BufferPool — for
  /// long-lived parameters that would otherwise pin pool size classes.
  static Tensor ZerosUnpooled(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }
  /// Scalar tensor.
  static Tensor Scalar(float value) { return Full({}, value); }
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, float stddev, Rng* rng);
  /// i.i.d. U[lo, hi) entries.
  static Tensor Uniform(Shape shape, float lo, float hi, Rng* rng);
  /// Borrowed, non-owning view of caller-owned memory (no copy, no free).
  /// The pointee must outlive the returned tensor and every view of it.
  static Tensor FromExternal(float* data, Shape shape);

  /// ----- shape accessors -----
  const Shape& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const {
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, rank());
    return shape_[i];
  }
  int64_t numel() const { return numel_; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// ----- element access -----
  float* data() { return storage_.data(); }
  const float* data() const { return storage_.data(); }

  float& at(int64_t i) {
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, numel_);
    return storage_.data()[i];
  }
  float at(int64_t i) const {
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, numel_);
    return storage_.data()[i];
  }
  float& at(int64_t i, int64_t j) {
    UM_CHECK_EQ(rank(), 2);
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, shape_[0]);
    UM_CHECK_GE(j, 0);
    UM_CHECK_LT(j, shape_[1]);
    return storage_.data()[i * shape_[1] + j];
  }
  float at(int64_t i, int64_t j) const {
    UM_CHECK_EQ(rank(), 2);
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, shape_[0]);
    UM_CHECK_GE(j, 0);
    UM_CHECK_LT(j, shape_[1]);
    return storage_.data()[i * shape_[1] + j];
  }
  float& at(int64_t i, int64_t j, int64_t k) {
    UM_CHECK_EQ(rank(), 3);
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, shape_[0]);
    UM_CHECK_GE(j, 0);
    UM_CHECK_LT(j, shape_[1]);
    UM_CHECK_GE(k, 0);
    UM_CHECK_LT(k, shape_[2]);
    return storage_.data()[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    UM_CHECK_EQ(rank(), 3);
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, shape_[0]);
    UM_CHECK_GE(j, 0);
    UM_CHECK_LT(j, shape_[1]);
    UM_CHECK_GE(k, 0);
    UM_CHECK_LT(k, shape_[2]);
    return storage_.data()[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Scalar value of a one-element tensor.
  float item() const {
    UM_CHECK_EQ(numel_, 1);
    return storage_.data()[0];
  }

  /// ----- mutation -----
  void Fill(float value);
  void SetZero() { Fill(0.0f); }
  /// Copies `other`'s elements into this tensor (shapes must match). No
  /// allocation — the workhorse for workspace reuse.
  void CopyFrom(const Tensor& other);

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// Returns a tensor sharing this storage but with a different shape of the
  /// same element count.
  Tensor Reshaped(Shape new_shape) const;

  /// Zero-copy view of index `i` along the leading dimension: shape is this
  /// shape without dim 0 (a [B, d] matrix yields the [d] row, a [B, L, d]
  /// batch yields the [L, d] sequence). Requires rank >= 1.
  Tensor Row(int64_t i) const;

  /// Zero-copy view of rows [begin, end) along the leading dimension.
  /// Requires rank >= 1.
  Tensor Slice(int64_t begin, int64_t end) const;

  /// True if both tensors alias the same underlying buffer (views of one
  /// tensor share storage even when their element windows are disjoint).
  bool shares_storage(const Tensor& other) const {
    return storage_.SharesBufferWith(other.storage_);
  }

  /// True when this handle (and its views) are the only reference to the
  /// buffer — gradient accumulation moves instead of copying in that case.
  bool storage_unique() const { return storage_.unique(); }

  /// ----- in-place arithmetic (used by optimizers) -----
  void AddInPlace(const Tensor& other, float alpha = 1.0f);  // this += a*other
  void ScaleInPlace(float alpha);                            // this *= a

  /// Sum / mean / min / max over all elements.
  double Sum() const;
  double Mean() const;
  float Min() const;
  float Max() const;
  /// sqrt(sum of squares).
  double L2Norm() const;

  /// Human-readable preview (truncated for large tensors).
  std::string ToString(int64_t max_elems = 32) const;

 private:
  // Internal: skip the allocation of the public default constructor when
  // the caller sets shape_/numel_/storage_ itself (views, factories).
  struct NoAllocTag {};
  explicit Tensor(NoAllocTag) {}

  Shape shape_;
  int64_t numel_ = 1;
  Storage storage_;
};

/// True if every pair of elements differs by at most atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace unimatch

#endif  // UNIMATCH_TENSOR_TENSOR_H_
