// Dense row-major float32 tensor.
//
// This is the numeric substrate for the from-scratch neural-network library
// (src/nn) that replaces the paper's TensorFlow dependency. Tensors are
// value types with shared storage: copying a Tensor aliases the same buffer
// (like a TF/PyTorch handle); use Clone() for a deep copy.
//
// Supported ranks are 0..3, which covers everything the two-tower model
// needs: scalars (losses), [B] vectors, [B, d] matrices and [B, L, d]
// sequence batches.

#ifndef UNIMATCH_TENSOR_TENSOR_H_
#define UNIMATCH_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/util/logging.h"
#include "src/util/random.h"

namespace unimatch {

/// Tensor shape: a small vector of dimension sizes.
using Shape = std::vector<int64_t>;

/// Returns the number of elements of a shape (1 for rank-0).
int64_t ShapeNumel(const Shape& shape);

/// "[2, 3, 16]"
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  /// An empty (rank-0, single element, zero) tensor.
  Tensor() : Tensor(Shape{}) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents (size must match).
  Tensor(Shape shape, std::vector<float> values);

  /// ----- factory helpers -----
  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }
  /// Scalar tensor.
  static Tensor Scalar(float value) { return Full({}, value); }
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, float stddev, Rng* rng);
  /// i.i.d. U[lo, hi) entries.
  static Tensor Uniform(Shape shape, float lo, float hi, Rng* rng);

  /// ----- shape accessors -----
  const Shape& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const {
    UM_CHECK_GE(i, 0);
    UM_CHECK_LT(i, rank());
    return shape_[i];
  }
  int64_t numel() const { return numel_; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// ----- element access -----
  float* data() { return storage_->data(); }
  const float* data() const { return storage_->data(); }

  float& at(int64_t i) {
    UM_CHECK_LT(i, numel_);
    return (*storage_)[i];
  }
  float at(int64_t i) const {
    UM_CHECK_LT(i, numel_);
    return (*storage_)[i];
  }
  float& at(int64_t i, int64_t j) {
    UM_CHECK_EQ(rank(), 2);
    return (*storage_)[i * shape_[1] + j];
  }
  float at(int64_t i, int64_t j) const {
    UM_CHECK_EQ(rank(), 2);
    return (*storage_)[i * shape_[1] + j];
  }
  float& at(int64_t i, int64_t j, int64_t k) {
    UM_CHECK_EQ(rank(), 3);
    return (*storage_)[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    UM_CHECK_EQ(rank(), 3);
    return (*storage_)[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Scalar value of a one-element tensor.
  float item() const {
    UM_CHECK_EQ(numel_, 1);
    return (*storage_)[0];
  }

  /// ----- mutation -----
  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// Returns a tensor sharing this storage but with a different shape of the
  /// same element count.
  Tensor Reshaped(Shape new_shape) const;

  /// True if both tensors alias the same storage.
  bool shares_storage(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  /// ----- in-place arithmetic (used by optimizers) -----
  void AddInPlace(const Tensor& other, float alpha = 1.0f);  // this += a*other
  void ScaleInPlace(float alpha);                            // this *= a

  /// Sum / mean / min / max over all elements.
  double Sum() const;
  double Mean() const;
  float Min() const;
  float Max() const;
  /// sqrt(sum of squares).
  double L2Norm() const;

  /// Human-readable preview (truncated for large tensors).
  std::string ToString(int64_t max_elems = 32) const;

 private:
  Shape shape_;
  int64_t numel_ = 1;
  std::shared_ptr<std::vector<float>> storage_;
};

/// True if every pair of elements differs by at most atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace unimatch

#endif  // UNIMATCH_TENSOR_TENSOR_H_
