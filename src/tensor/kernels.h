// Vectorized compute primitives behind the tensor, nn, ann, and serving hot
// paths.
//
// Every FLOP-heavy inner loop in the repo (gemm, dot-product scoring, l2
// normalization, optimizer axpy updates) bottoms out here. Each primitive has
// two implementations selected once at runtime:
//
//   * an AVX2+FMA path (x86-64, register-tiled, 8-wide float lanes), compiled
//     with per-function target attributes so the rest of the library keeps
//     its portable baseline ISA;
//   * a portable scalar path, also used as the forced fallback for testing
//     and on machines without AVX2.
//
// Dispatch is resolved on first use from CPUID, overridable with the
// UNIMATCH_KERNEL_BACKEND environment variable ("auto", "avx2", "portable")
// or, in tests, with SetBackendForTest(). The two paths are numerically
// equivalent up to float summation order (see tests/tensor/kernels_test.cc
// for the exhaustive equivalence suite); neither is bitwise-identical to the
// other because the vector path reassociates the reduction.
//
// Threading stays OUT of this layer: the row-range gemm kernels are
// single-threaded building blocks, and callers (src/tensor/tensor_ops.cc)
// shard row blocks across ThreadPool::ParallelFor. See docs/PERFORMANCE.md.

#ifndef UNIMATCH_TENSOR_KERNELS_H_
#define UNIMATCH_TENSOR_KERNELS_H_

#include <cstdint>

namespace unimatch::kernels {

/// Which implementation family the dispatched entry points run.
enum class Backend {
  kPortable = 0,
  kAvx2 = 1,
};

/// The backend the entry points currently dispatch to. Resolved once on
/// first use: UNIMATCH_KERNEL_BACKEND env override first, then CPUID.
Backend ActiveBackend();

/// "portable" or "avx2".
const char* BackendName(Backend backend);

/// Test hook: force every subsequent kernel call onto `backend`. Forcing
/// kAvx2 on a machine without AVX2 support is a contract violation.
void SetBackendForTest(Backend backend);

/// Test hook: drop the forced backend and re-resolve from env/CPUID.
void ResetBackendForTest();

/// sum_i a[i] * b[i] (float accumulation).
float DotF32(const float* a, const float* b, int64_t n);

/// y[i] += alpha * x[i].
void AxpyF32(int64_t n, float alpha, const float* x, float* y);

/// y[i] = alpha * x[i] + beta * y[i]. `y` must be initialized (it is read
/// even when beta == 0). `x` and `y` may alias exactly (x == y).
void ScaleAddF32(int64_t n, float alpha, const float* x, float beta, float* y);

/// y[i] = x[i] / max(||x||_2, eps); returns the clamped norm. `x` and `y`
/// may alias exactly.
float L2NormalizeF32(int64_t n, const float* x, float* y, float eps);

/// Fused optimizer apply: g[i] *= scale, then w[i] += alpha * g[i], in one
/// pass over both arrays. For finite inputs the result is bitwise identical
/// to ScaleAddF32(n, 0, g, scale, g) followed by AxpyF32(n, alpha, g, w)
/// (the separate passes the tape-mode optimizer runs): the per-element
/// +-0 term that ScaleAddF32 adds never changes a finite product's sign or
/// value, and both kernels use the same 8-lane block and scalar-tail
/// structure. `g` and `w` must not alias.
void FusedScaleAxpyF32(int64_t n, float scale, float* g, float alpha,
                       float* w);

/// Row-range gemm building blocks. Both compute, for C rows i in [i0, i1):
///
///   C[i, j] = beta * C[i, j] + alpha * sum_p A(i, p) * B(?, ?)
///
/// where A(i, p) = a[i * a_row_stride + p * a_col_stride], so one kernel
/// serves both the non-transposed ([m, k]: strides (k, 1)) and transposed
/// ([k, m]: strides (1, m)) storage of A. C is row-major [m, n]. When
/// beta == 0 the C rows are not read. Single-threaded by design — callers
/// shard [0, m) into row blocks for parallelism.
///
/// GemmRowsAxpy: B is row-major [k, n] (B(p, j) = b[p * n + j]); the inner
/// loop broadcasts A(i, p) against contiguous B rows (the !trans_b layouts).
void GemmRowsAxpy(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
                  const float* a, int64_t a_row_stride, int64_t a_col_stride,
                  const float* b, float beta, float* c);

/// GemmRowsDot: B is row-major [n, k] (B(j, p) = b[j * k + p]); each C entry
/// is a dot product over contiguous B rows (the trans_b layouts).
void GemmRowsDot(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
                 const float* a, int64_t a_row_stride, int64_t a_col_stride,
                 const float* b, float beta, float* c);

// ---------------------------------------------------------------------------
// Quantized scoring primitives (see src/tensor/quant.h for the storage side).
// Asymmetric layout: the query stays float32, the stored row is int8 codes or
// IEEE-754 binary16. The widening int8 -> float conversion is exact, so both
// backends agree up to the same summation-order slack as the f32 kernels.
// ---------------------------------------------------------------------------

/// sum_i a[i] * float(codes[i]). The caller applies the per-row scale.
float DotF32I8(const float* a, const int8_t* codes, int64_t n);

/// sum_i a[i] * half_to_float(half[i]).
float DotF32F16(const float* a, const uint16_t* half, int64_t n);

/// dst[i] = float_to_half(src[i]), IEEE binary16, round-to-nearest-even.
/// Both backends (hardware F16C and the portable software path) produce
/// bitwise-identical halves for finite, non-denormal floats.
void F32ToF16(int64_t n, const float* src, uint16_t* dst);

/// dst[i] = half_to_float(src[i]). Exact (every binary16 is a float32).
void F16ToF32(int64_t n, const uint16_t* src, float* dst);

/// out[r] = scales[r] * DotF32I8(query, codes + r*stride, d) for r in
/// [0, rows): the rowwise int8 scoring loop behind the quantized indexes.
void ScoreRowsI8(int64_t rows, int64_t d, const float* query,
                 const int8_t* codes, int64_t row_stride, const float* scales,
                 float* out);

/// out[r] = DotF32F16(query, half + r*stride, d) for r in [0, rows).
void ScoreRowsF16(int64_t rows, int64_t d, const float* query,
                  const uint16_t* half, int64_t row_stride, float* out);

/// out[r * d + j] = scales[r] * float(codes[r * row_stride + j]) for rows
/// [0, rows), packed output — block dequantization behind the batched
/// quantized scans, where one decoded block is scored against a whole query
/// batch. The widening int8 convert is exact and the scale multiply rounds
/// once per lane, so both backends decode bitwise-identical blocks.
void DequantRowsI8(int64_t rows, int64_t d, const int8_t* codes,
                   int64_t row_stride, const float* scales, float* out);

/// Frozen scalar reference paths for the quantized primitives — the
/// equivalence baseline for tests and the "before" side of BENCH_quant.json,
/// never dispatched. Like GemmReference: do not "improve" these.
float DotF32I8Reference(const float* a, const int8_t* codes, int64_t n);
float DotF32F16Reference(const float* a, const uint16_t* half, int64_t n);
uint16_t F32ToF16Reference(float value);
float F16ToF32Reference(uint16_t half);

/// The pre-vectorization scalar gemm, kept verbatim as the equivalence
/// baseline for tests and the "before" side of BENCH_kernels.json. Same
/// contract as tensor_ops Gemm; always single-threaded.
void GemmReference(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                   float alpha, const float* a, const float* b, float beta,
                   float* c);

}  // namespace unimatch::kernels

#endif  // UNIMATCH_TENSOR_KERNELS_H_
