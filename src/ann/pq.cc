#include "src/ann/pq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/obs.h"
#include "src/tensor/kernels.h"
#include "src/util/contract.h"
#include "src/util/random.h"

namespace unimatch::ann {

namespace {

// Largest divisor of d that is <= want (>= 1). PQ subspaces must tile the
// dimension exactly.
int64_t LargestDivisorAtMost(int64_t d, int64_t want) {
  want = std::min(std::max<int64_t>(want, 1), d);
  for (int64_t m = want; m > 1; --m) {
    if (d % m == 0) return m;
  }
  return 1;
}

float L2DistanceSquared(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

// Catalog rows per scoring block; fixed (never a function of nq) and a
// multiple of the gemm kernel's 4-row j-grouping, so every row's score is
// bitwise identical at any batch size (see src/ann/index.cc).
constexpr int64_t kScanBlockRows = 256;

}  // namespace

Status QuantizedFlatIndex::Build(const Tensor& vectors) {
  if (vectors.rank() != 2) {
    return Status::InvalidArgument("index expects a [N, d] matrix");
  }
  if (vectors.dim(0) == 0) return Status::InvalidArgument("empty index");
  UM_SCOPED_TIMER("ann.qflat.build.ms");
  table_ = QuantizedMatrix::Quantize(vectors, type_);
  return Status::OK();
}

void QuantizedFlatIndex::MultiSearchImpl(const float* queries, int64_t nq,
                                         int k, SearchWorkspace& ws,
                                         SearchResult* out) const {
  UM_SCOPED_TIMER("ann.qflat.search.ms");
  UM_COUNTER_ADD("ann.qflat.searches", nq);
  UM_CHECK(table_.valid()) << "Search before Build";
  const int64_t n = table_.rows(), d = table_.cols();
  BatchTopK& top = ws.batch_topk();
  top.Reset(nq, k);
  const int64_t block = std::min(n, kScanBlockRows);
  float* scores = ws.Scores(nq * block);
  float* decoded = table_.type() == ScalarType::kF32
                       ? nullptr
                       : ws.DequantBlock(block * d);
  for (int64_t b0 = 0; b0 < n; b0 += kScanBlockRows) {
    const int64_t bn = std::min(kScanBlockRows, n - b0);
    if (table_.type() == ScalarType::kF32) {
      // f32 passthrough tables score through the same blocked gemm sweep
      // as BruteForceIndex.
      kernels::GemmRowsDot(0, nq, bn, d, 1.0f, queries, d, 1,
                           table_.f32_row(b0), 0.0f, scores);
    } else {
      // Quantized codes: decode the block once — the decode cost amortizes
      // over the whole batch — then score every query through the same
      // blocked gemm as the f32 path. The block extent never depends on
      // nq, so scores stay batch-size invariant (Search parity).
      table_.DequantizeRows(b0, b0 + bn, decoded);
      kernels::GemmRowsDot(0, nq, bn, d, 1.0f, queries, d, 1, decoded, 0.0f,
                           scores);
    }
    for (int64_t q = 0; q < nq; ++q) {
      const float* row = scores + q * bn;
      for (int64_t j = 0; j < bn; ++j) top.Offer(q, b0 + j, row[j]);
    }
  }
  top.TakeInto(out);
}

Status IvfPqIndex::Build(const Tensor& vectors) {
  if (vectors.rank() != 2) {
    return Status::InvalidArgument("index expects a [N, d] matrix");
  }
  UM_SCOPED_TIMER("ann.pq.build.ms");
  UM_COUNTER_INC("ann.pq.builds");
  UM_CHECK_FINITE(vectors) << "IvfPqIndex::Build embeddings";
  const int64_t n = vectors.dim(0), d = vectors.dim(1);
  if (n == 0) return Status::InvalidArgument("empty index");
  n_ = n;
  d_ = d;

  // Resolve the config against the data: nlist ~ sqrt(N), m must divide d,
  // ks cannot exceed the number of training subvectors (= n).
  int64_t nlist = config_.nlist;
  if (nlist <= 0) {
    nlist = std::max<int64_t>(
        1, static_cast<int64_t>(std::sqrt(static_cast<double>(n))));
  }
  nlist = std::min(nlist, n);
  config_.nlist = nlist;
  config_.nprobe = std::min(config_.nprobe, nlist);
  m_ = LargestDivisorAtMost(d, config_.num_subspaces);
  config_.num_subspaces = m_;
  ds_ = d / m_;
  ks_ = std::min<int64_t>(std::max<int64_t>(config_.codebook_size, 1), 256);
  ks_ = std::min(ks_, n);
  config_.codebook_size = ks_;

  // Coarse quantizer: same spherical k-means as IvfIndex.
  std::vector<int64_t> assign;
  centroids_ = TrainSphericalKMeans(vectors, nlist, config_.coarse_iters,
                                    config_.seed, &assign);
  lists_.assign(nlist, {});
  for (int64_t i = 0; i < n; ++i) lists_[assign[i]].push_back(i);

  // Per-subspace L2 k-means codebooks over the raw subvectors
  // (non-residual: the inner product decomposes exactly over subspaces, so
  // codeword reconstruction error is the only approximation).
  codebooks_ = Tensor({m_ * ks_, ds_});
  codes_.assign(static_cast<size_t>(n) * m_, 0);
  std::vector<int64_t> sub_assign(n, 0);
  for (int64_t s = 0; s < m_; ++s) {
    float* book = codebooks_.data() + s * ks_ * ds_;
    // Seeded per subspace so books differ but the whole build is
    // deterministic.
    Rng rng(config_.seed + 0x9e3779b9u * static_cast<uint64_t>(s + 1));
    auto init = rng.SampleWithoutReplacement(n, ks_);
    for (int64_t c = 0; c < ks_; ++c) {
      const float* src = vectors.data() + init[c] * d + s * ds_;
      std::copy(src, src + ds_, book + c * ds_);
    }
    for (int iter = 0; iter < config_.pq_iters; ++iter) {
      for (int64_t i = 0; i < n; ++i) {
        const float* v = vectors.data() + i * d + s * ds_;
        float best = std::numeric_limits<float>::infinity();
        int64_t best_c = 0;
        for (int64_t c = 0; c < ks_; ++c) {
          const float dist = L2DistanceSquared(v, book + c * ds_, ds_);
          if (dist < best) {
            best = dist;
            best_c = c;
          }
        }
        sub_assign[i] = best_c;
      }
      std::vector<double> sums(static_cast<size_t>(ks_) * ds_, 0.0);
      std::vector<int64_t> counts(ks_, 0);
      for (int64_t i = 0; i < n; ++i) {
        const float* v = vectors.data() + i * d + s * ds_;
        double* sum = sums.data() + sub_assign[i] * ds_;
        for (int64_t j = 0; j < ds_; ++j) sum[j] += v[j];
        ++counts[sub_assign[i]];
      }
      for (int64_t c = 0; c < ks_; ++c) {
        if (counts[c] == 0) continue;  // empty cluster keeps its codeword
        const double inv = 1.0 / static_cast<double>(counts[c]);
        for (int64_t j = 0; j < ds_; ++j) {
          book[c * ds_ + j] = static_cast<float>(sums[c * ds_ + j] * inv);
        }
      }
    }
    // Final encode of this subspace with the converged book.
    for (int64_t i = 0; i < n; ++i) {
      const float* v = vectors.data() + i * d + s * ds_;
      float best = std::numeric_limits<float>::infinity();
      int64_t best_c = 0;
      for (int64_t c = 0; c < ks_; ++c) {
        const float dist = L2DistanceSquared(v, book + c * ds_, ds_);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      codes_[static_cast<size_t>(i) * m_ + s] = static_cast<uint8_t>(best_c);
    }
  }
  UM_GAUGE_SET("ann.pq.bytes_per_row", bytes_per_row());
  return Status::OK();
}

void IvfPqIndex::MultiSearchImpl(const float* queries, int64_t nq, int k,
                                 SearchWorkspace& ws,
                                 SearchResult* out) const {
  UM_SCOPED_TIMER("ann.pq.search.ms");
  UM_COUNTER_ADD("ann.pq.searches", nq);
  UM_CHECK(!lists_.empty()) << "Search before Build";
  const int64_t nlist = centroids_.dim(0);
  const int nprobe = static_cast<int>(config_.nprobe);

  // Batched ADC slab: adc[(s * nq + q) * ks + c] = dot(query_q's subvector
  // s, codeword(s, c)). Built once per micro-batch with the codeword loop
  // outside the query loop, so each codeword row is read once per batch
  // instead of once per query. Each entry is the same single DotF32 the
  // per-query table used — batching reorders the loops, not the math — so
  // Search scores stay exactly AdcScore (tests/ann/pq_test.cc).
  float* adc = ws.Adc(m_ * nq * ks_);
  for (int64_t s = 0; s < m_; ++s) {
    const float* book = codebooks_.data() + s * ks_ * ds_;
    for (int64_t c = 0; c < ks_; ++c) {
      const float* word = book + c * ds_;
      for (int64_t q = 0; q < nq; ++q) {
        adc[(s * nq + q) * ks_ + c] =
            kernels::DotF32(queries + q * d_ + s * ds_, word, ds_);
      }
    }
  }

  for (int64_t q = 0; q < nq; ++q) {
    const float* qv = queries + q * d_;
    TopK& coarse = ws.coarse_topk(nprobe);
    for (int64_t c = 0; c < nlist; ++c) {
      coarse.Offer(c, kernels::DotF32(qv, centroids_.data() + c * d_, d_));
    }
    SearchResult* probes = ws.ProbeScratch(nprobe);
    coarse.TakeInto(probes, nprobe);
    TopK& top = ws.result_topk(k);
    for (int p = 0; p < nprobe; ++p) {
      if (probes[p].id < 0) continue;
      for (int64_t i : lists_[probes[p].id]) {
        const uint8_t* code = codes_.data() + static_cast<size_t>(i) * m_;
        float score = 0.0f;
        for (int64_t s = 0; s < m_; ++s) {
          score += adc[(s * nq + q) * ks_ + code[s]];
        }
        top.Offer(i, score);
      }
    }
    top.TakeInto(out + q * k, k);
  }
}

float IvfPqIndex::AdcScore(const float* query, int64_t id) const {
  UM_CHECK_GE(id, 0);
  UM_CHECK_LT(id, n_);
  const uint8_t* code = codes_.data() + static_cast<size_t>(id) * m_;
  float score = 0.0f;
  for (int64_t s = 0; s < m_; ++s) {
    const float* qs = query + s * ds_;
    const float* word = codebooks_.data() + (s * ks_ + code[s]) * ds_;
    score += kernels::DotF32(qs, word, ds_);
  }
  return score;
}

int64_t IvfPqIndex::payload_bytes() const {
  // Per-vector codes and inverted-list ids, plus the shared coarse
  // centroids and codebooks (amortized across the table in bytes_per_row).
  const int64_t per_vector =
      n_ * m_ + n_ * static_cast<int64_t>(sizeof(int64_t));
  const int64_t shared = centroids_.numel() * 4 + codebooks_.numel() * 4;
  return per_vector + shared;
}

double IvfPqIndex::bytes_per_row() const {
  return n_ == 0 ? 0.0
                 : static_cast<double>(payload_bytes()) /
                       static_cast<double>(n_);
}

}  // namespace unimatch::ann
