#include "src/ann/index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/obs.h"
#include "src/tensor/kernels.h"
#include "src/util/contract.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace unimatch::ann {

namespace {

float Dot(const float* a, const float* b, int64_t d) {
  return kernels::DotF32(a, b, d);
}

// Catalog rows per scoring block in the flat scans. A block stays
// cache-resident while every query in the micro-batch scores against it.
// Fixed (never a function of nq), and a multiple of the gemm kernel's
// 4-row j-grouping, so a given catalog row reduces identically at every
// batch size — the bitwise Search/MultiSearch parity contract.
constexpr int64_t kScanBlockRows = 256;

}  // namespace

Tensor TrainSphericalKMeans(const Tensor& vectors, int64_t nlist, int iters,
                            uint64_t seed, std::vector<int64_t>* assign) {
  UM_CHECK_EQ(vectors.rank(), 2);
  const int64_t n = vectors.dim(0), d = vectors.dim(1);
  UM_CHECK_GT(n, 0);
  UM_CHECK_GT(nlist, 0);
  UM_CHECK_LE(nlist, n);

  // Init centroids from random distinct points.
  Rng rng(seed);
  Tensor centroids({nlist, d});
  auto init = rng.SampleWithoutReplacement(n, nlist);
  for (int64_t c = 0; c < nlist; ++c) {
    const float* src = vectors.data() + init[c] * d;
    std::copy(src, src + d, centroids.data() + c * d);
  }
  std::vector<int64_t> local_assign(n, 0);
  std::vector<int64_t>& a = assign != nullptr ? *assign : local_assign;
  a.assign(n, 0);
  for (int iter = 0; iter < iters; ++iter) {
    // Assignment step (max inner product).
    for (int64_t i = 0; i < n; ++i) {
      const float* v = vectors.data() + i * d;
      float best = -std::numeric_limits<float>::infinity();
      int64_t best_c = 0;
      for (int64_t c = 0; c < nlist; ++c) {
        const float s = Dot(v, centroids.data() + c * d, d);
        if (s > best) {
          best = s;
          best_c = c;
        }
      }
      a[i] = best_c;
    }
    // Update step: mean of members, re-normalized (empty cluster keeps its
    // centroid).
    Tensor sums({nlist, d});
    std::vector<int64_t> counts(nlist, 0);
    for (int64_t i = 0; i < n; ++i) {
      kernels::AxpyF32(d, 1.0f, vectors.data() + i * d,
                       sums.data() + a[i] * d);
      ++counts[a[i]];
    }
    for (int64_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;
      // An all-zero sum normalizes to zero either way (0 / eps == 0).
      kernels::L2NormalizeF32(d, sums.data() + c * d,
                              centroids.data() + c * d, 1e-12f);
    }
  }
  return centroids;
}

void Index::MultiSearch(const float* queries, int64_t nq, int k,
                        SearchWorkspace& ws, SearchResult* out) const {
  UM_CHECK_GT(nq, 0);
  UM_CHECK_GT(k, 0);
  UM_CHECK(queries != nullptr);
  UM_CHECK(out != nullptr);
  UM_COUNTER_INC("ann.batch.multi_searches");
  UM_COUNTER_ADD("ann.batch.queries", nq);
  MultiSearchImpl(queries, nq, k, ws, out);
}

std::vector<SearchResult> Index::Search(const float* query, int k) const {
  std::vector<SearchResult> out(static_cast<size_t>(std::max(k, 0)));
  MultiSearch(query, 1, k, ThreadLocalSearchWorkspace(), out.data());
  // Trim padding: ids are row indices, so id < 0 only marks absent rows.
  while (!out.empty() && out.back().id < 0) out.pop_back();
  return out;
}

Status BruteForceIndex::Build(const Tensor& vectors) {
  if (vectors.rank() != 2) {
    return Status::InvalidArgument("index expects a [N, d] matrix");
  }
  UM_CHECK_FINITE(vectors) << "BruteForceIndex::Build embeddings";
  vectors_ = vectors;  // refcounted alias; the index never mutates it
  return Status::OK();
}

void BruteForceIndex::MultiSearchImpl(const float* queries, int64_t nq, int k,
                                      SearchWorkspace& ws,
                                      SearchResult* out) const {
  UM_SCOPED_TIMER("ann.brute.search.ms");
  UM_COUNTER_ADD("ann.brute.searches", nq);
  const int64_t n = size(), d = dim();
  BatchTopK& top = ws.batch_topk();
  top.Reset(nq, k);
  float* scores = ws.Scores(nq * std::min(n, kScanBlockRows));
  for (int64_t b0 = 0; b0 < n; b0 += kScanBlockRows) {
    const int64_t bn = std::min(kScanBlockRows, n - b0);
    // scores[q * bn + j] = dot(queries[q], row b0 + j) — one blocked sweep
    // for the whole micro-batch instead of nq strided passes.
    kernels::GemmRowsDot(0, nq, bn, d, 1.0f, queries, d, 1,
                         vectors_.data() + b0 * d, 0.0f, scores);
    for (int64_t q = 0; q < nq; ++q) {
      const float* row = scores + q * bn;
      for (int64_t j = 0; j < bn; ++j) top.Offer(q, b0 + j, row[j]);
    }
  }
  top.TakeInto(out);
}

Status IvfIndex::Build(const Tensor& vectors) {
  if (vectors.rank() != 2) {
    return Status::InvalidArgument("index expects a [N, d] matrix");
  }
  UM_SCOPED_TIMER("ann.ivf.build.ms");
  UM_COUNTER_INC("ann.ivf.builds");
  // NaN embeddings would silently lose the centroid-assignment comparisons.
  UM_CHECK_FINITE(vectors) << "IvfIndex::Build embeddings";
  vectors_ = vectors;  // refcounted alias; the index never mutates it
  const int64_t n = vectors_.dim(0);
  if (n == 0) return Status::InvalidArgument("empty index");
  int64_t nlist = config_.nlist;
  if (nlist <= 0) {
    nlist = std::max<int64_t>(
        1, static_cast<int64_t>(std::sqrt(static_cast<double>(n))));
  }
  nlist = std::min(nlist, n);
  config_.nlist = nlist;
  config_.nprobe = std::min(config_.nprobe, nlist);

  std::vector<int64_t> assign;
  centroids_ = TrainSphericalKMeans(vectors_, nlist, config_.kmeans_iters,
                                    config_.seed, &assign);
  lists_.assign(nlist, {});
  for (int64_t i = 0; i < n; ++i) lists_[assign[i]].push_back(i);
  return Status::OK();
}

void IvfIndex::MultiSearchImpl(const float* queries, int64_t nq, int k,
                               SearchWorkspace& ws, SearchResult* out) const {
  UM_SCOPED_TIMER("ann.ivf.search.ms");
  UM_COUNTER_ADD("ann.ivf.searches", nq);
  UM_CHECK(!lists_.empty());
  const int64_t d = dim();
  const int64_t nlist = centroids_.dim(0);
  const int nprobe = static_cast<int>(config_.nprobe);

  for (int64_t q = 0; q < nq; ++q) {
    const float* qv = queries + q * d;
    TopK& coarse = ws.coarse_topk(nprobe);
    for (int64_t c = 0; c < nlist; ++c) {
      coarse.Offer(c, Dot(qv, centroids_.data() + c * d, d));
    }
    SearchResult* probes = ws.ProbeScratch(nprobe);
    coarse.TakeInto(probes, nprobe);
    TopK& top = ws.result_topk(k);
    for (int p = 0; p < nprobe; ++p) {
      if (probes[p].id < 0) continue;
      for (int64_t i : lists_[probes[p].id]) {
        top.Offer(i, Dot(qv, vectors_.data() + i * d, d));
      }
    }
    top.TakeInto(out + q * k, k);
  }
}

double MeasureRecallAtK(const Index& index, const BruteForceIndex& exact,
                        const Tensor& queries, int k) {
  UM_CHECK_EQ(queries.rank(), 2);
  const int64_t nq = queries.dim(0), d = queries.dim(1);
  UM_CHECK_EQ(d, index.dim());
  double hits = 0.0;
  std::vector<int64_t> truth_ids;
  for (int64_t q = 0; q < nq; ++q) {
    const float* qv = queries.data() + q * d;
    auto approx = index.Search(qv, k);
    auto truth = exact.Search(qv, k);
    truth_ids.clear();
    for (const auto& r : truth) truth_ids.push_back(r.id);
    std::sort(truth_ids.begin(), truth_ids.end());
    for (const auto& r : approx) {
      if (std::binary_search(truth_ids.begin(), truth_ids.end(), r.id)) {
        hits += 1.0;
      }
    }
  }
  return hits / (static_cast<double>(nq) * k);
}

}  // namespace unimatch::ann
