#include "src/ann/index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "src/obs/obs.h"
#include "src/tensor/kernels.h"
#include "src/util/contract.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace unimatch::ann {

namespace {

float Dot(const float* a, const float* b, int64_t d) {
  return kernels::DotF32(a, b, d);
}

}  // namespace

Tensor TrainSphericalKMeans(const Tensor& vectors, int64_t nlist, int iters,
                            uint64_t seed, std::vector<int64_t>* assign) {
  UM_CHECK_EQ(vectors.rank(), 2);
  const int64_t n = vectors.dim(0), d = vectors.dim(1);
  UM_CHECK_GT(n, 0);
  UM_CHECK_GT(nlist, 0);
  UM_CHECK_LE(nlist, n);

  // Init centroids from random distinct points.
  Rng rng(seed);
  Tensor centroids({nlist, d});
  auto init = rng.SampleWithoutReplacement(n, nlist);
  for (int64_t c = 0; c < nlist; ++c) {
    const float* src = vectors.data() + init[c] * d;
    std::copy(src, src + d, centroids.data() + c * d);
  }
  std::vector<int64_t> local_assign(n, 0);
  std::vector<int64_t>& a = assign != nullptr ? *assign : local_assign;
  a.assign(n, 0);
  for (int iter = 0; iter < iters; ++iter) {
    // Assignment step (max inner product).
    for (int64_t i = 0; i < n; ++i) {
      const float* v = vectors.data() + i * d;
      float best = -std::numeric_limits<float>::infinity();
      int64_t best_c = 0;
      for (int64_t c = 0; c < nlist; ++c) {
        const float s = Dot(v, centroids.data() + c * d, d);
        if (s > best) {
          best = s;
          best_c = c;
        }
      }
      a[i] = best_c;
    }
    // Update step: mean of members, re-normalized (empty cluster keeps its
    // centroid).
    Tensor sums({nlist, d});
    std::vector<int64_t> counts(nlist, 0);
    for (int64_t i = 0; i < n; ++i) {
      kernels::AxpyF32(d, 1.0f, vectors.data() + i * d,
                       sums.data() + a[i] * d);
      ++counts[a[i]];
    }
    for (int64_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;
      // An all-zero sum normalizes to zero either way (0 / eps == 0).
      kernels::L2NormalizeF32(d, sums.data() + c * d,
                              centroids.data() + c * d, 1e-12f);
    }
  }
  return centroids;
}

Status BruteForceIndex::Build(const Tensor& vectors) {
  if (vectors.rank() != 2) {
    return Status::InvalidArgument("index expects a [N, d] matrix");
  }
  UM_CHECK_FINITE(vectors) << "BruteForceIndex::Build embeddings";
  vectors_ = vectors;  // refcounted alias; the index never mutates it
  return Status::OK();
}

std::vector<SearchResult> BruteForceIndex::Search(const float* query,
                                                  int k) const {
  UM_SCOPED_TIMER("ann.brute.search.ms");
  UM_COUNTER_INC("ann.brute.searches");
  UM_CHECK_GT(k, 0);
  const int64_t n = size(), d = dim();
  TopK top(k);
  for (int64_t i = 0; i < n; ++i) {
    top.Offer(i, Dot(query, vectors_.data() + i * d, d));
  }
  return top.Take();
}

Status IvfIndex::Build(const Tensor& vectors) {
  if (vectors.rank() != 2) {
    return Status::InvalidArgument("index expects a [N, d] matrix");
  }
  UM_SCOPED_TIMER("ann.ivf.build.ms");
  UM_COUNTER_INC("ann.ivf.builds");
  // NaN embeddings would silently lose the centroid-assignment comparisons.
  UM_CHECK_FINITE(vectors) << "IvfIndex::Build embeddings";
  vectors_ = vectors;  // refcounted alias; the index never mutates it
  const int64_t n = vectors_.dim(0);
  if (n == 0) return Status::InvalidArgument("empty index");
  int64_t nlist = config_.nlist;
  if (nlist <= 0) {
    nlist = std::max<int64_t>(
        1, static_cast<int64_t>(std::sqrt(static_cast<double>(n))));
  }
  nlist = std::min(nlist, n);
  config_.nlist = nlist;
  config_.nprobe = std::min(config_.nprobe, nlist);

  std::vector<int64_t> assign;
  centroids_ = TrainSphericalKMeans(vectors_, nlist, config_.kmeans_iters,
                                    config_.seed, &assign);
  lists_.assign(nlist, {});
  for (int64_t i = 0; i < n; ++i) lists_[assign[i]].push_back(i);
  return Status::OK();
}

std::vector<SearchResult> IvfIndex::Search(const float* query, int k) const {
  UM_SCOPED_TIMER("ann.ivf.search.ms");
  UM_COUNTER_INC("ann.ivf.searches");
  UM_CHECK_GT(k, 0);
  UM_CHECK(!lists_.empty());
  const int64_t d = dim();
  const int64_t nlist = centroids_.dim(0);

  TopK coarse(static_cast<int>(config_.nprobe));
  for (int64_t c = 0; c < nlist; ++c) {
    coarse.Offer(c, Dot(query, centroids_.data() + c * d, d));
  }
  TopK top(k);
  for (const auto& cr : coarse.Take()) {
    for (int64_t i : lists_[cr.id]) {
      top.Offer(i, Dot(query, vectors_.data() + i * d, d));
    }
  }
  return top.Take();
}

double MeasureRecallAtK(const Index& index, const BruteForceIndex& exact,
                        const Tensor& queries, int k) {
  UM_CHECK_EQ(queries.rank(), 2);
  const int64_t nq = queries.dim(0), d = queries.dim(1);
  UM_CHECK_EQ(d, index.dim());
  double hits = 0.0;
  for (int64_t q = 0; q < nq; ++q) {
    const float* qv = queries.data() + q * d;
    auto approx = index.Search(qv, k);
    auto truth = exact.Search(qv, k);
    std::unordered_set<int64_t> truth_ids;
    for (const auto& r : truth) truth_ids.insert(r.id);
    for (const auto& r : approx) {
      if (truth_ids.count(r.id)) hits += 1.0;
    }
  }
  return hits / (static_cast<double>(nq) * k);
}

}  // namespace unimatch::ann
