// Compressed retrieval: product-quantized IVF and quantized flat scan.
//
// Both indexes trade a controlled amount of recall for memory, the lever
// that makes billion-row merchant catalogs servable on one box:
//
//   * QuantizedFlatIndex — exact scan over a QuantizedMatrix (int8 or fp16
//     codes, src/tensor/quant.h). Same candidate set as BruteForceIndex;
//     the only approximation is the code round-trip error, so recall@k
//     stays near 1 while the table shrinks ~3-4x (int8) or 2x (fp16).
//
//   * IvfPqIndex — coarse spherical k-means (TrainSphericalKMeans, shared
//     with IvfIndex) plus per-subspace product-quantization codebooks.
//     Each vector stores only m uint8 codes; queries precompute an
//     asymmetric-distance (ADC) table of query-subvector x codeword inner
//     products, so scoring a candidate is m table lookups and adds. The
//     inner product decomposes over subspaces exactly
//     (dot(q, x) = sum_s dot(q_s, x_s)), so the ADC score's only error is
//     the codeword round-trip — no residual encoding is needed for the
//     recall floor gated in CI (recall@10 >= 0.95 on the bench workload).
//
// Codebooks are trained with plain L2 k-means per subspace: minimizing the
// subvector reconstruction error bounds the inner-product error by
// Cauchy-Schwarz for the l2-normalized queries this repo serves.
//
// Determinism: Build is single-threaded and seeded; identical inputs and
// config produce identical codebooks and codes (tests/ann/pq_test.cc).

#ifndef UNIMATCH_ANN_PQ_H_
#define UNIMATCH_ANN_PQ_H_

#include <cstdint>
#include <vector>

#include "src/ann/index.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace unimatch::ann {

/// Exact scan over quantized codes: BruteForceIndex's candidate set at a
/// fraction of the bytes. `type` kF32 degenerates to a plain flat scan.
class QuantizedFlatIndex : public Index {
 public:
  explicit QuantizedFlatIndex(ScalarType type = ScalarType::kI8)
      : type_(type) {}

  Status Build(const Tensor& vectors) override;
  int64_t size() const override { return table_.rows(); }
  int64_t dim() const override { return table_.cols(); }

  ScalarType storage() const { return type_; }
  const QuantizedMatrix& table() const { return table_; }
  int64_t payload_bytes() const { return table_.payload_bytes(); }

 protected:
  void MultiSearchImpl(const float* queries, int64_t nq, int k,
                       SearchWorkspace& ws, SearchResult* out) const override;

 private:
  ScalarType type_;
  QuantizedMatrix table_;
};

struct IvfPqConfig {
  /// Coarse clusters; defaults to ~sqrt(N) when 0.
  int64_t nlist = 0;
  /// Coarse clusters scanned per query.
  int64_t nprobe = 8;
  /// PQ subspaces m; auto-reduced to the largest divisor of d at Build.
  int64_t num_subspaces = 4;
  /// Codewords per subspace (<= 256: codes are uint8).
  int64_t codebook_size = 256;
  int coarse_iters = 10;
  int pq_iters = 10;
  uint64_t seed = 31;
};

/// IVF with product-quantized storage: each indexed vector keeps only
/// m uint8 codes (plus its inverted-list slot); full vectors are dropped
/// after Build.
class IvfPqIndex : public Index {
 public:
  explicit IvfPqIndex(IvfPqConfig config = {}) : config_(config) {}

  Status Build(const Tensor& vectors) override;
  int64_t size() const override { return n_; }
  int64_t dim() const override { return d_; }

  /// Config after Build's clamping (nlist, nprobe, num_subspaces resolved).
  const IvfPqConfig& config() const { return config_; }

  /// ADC score of one indexed vector (table-free path; tests and spot
  /// checks — Search amortizes the table across the probed lists).
  float AdcScore(const float* query, int64_t id) const;

  /// Per-vector PQ codes, row-major [n, m].
  const std::vector<uint8_t>& codes() const { return codes_; }
  /// Codebooks as a [m * ks, ds] matrix (subspace s, codeword c at row
  /// s * ks + c).
  const Tensor& codebooks() const { return codebooks_; }

  /// Bytes held per indexed vector after Build: PQ codes + inverted-list
  /// id + the amortized centroid/codebook share.
  int64_t payload_bytes() const;
  double bytes_per_row() const;

 protected:
  void MultiSearchImpl(const float* queries, int64_t nq, int k,
                       SearchWorkspace& ws, SearchResult* out) const override;

 private:
  IvfPqConfig config_;
  int64_t n_ = 0, d_ = 0;
  int64_t m_ = 0;   // subspaces (divides d_)
  int64_t ds_ = 0;  // lanes per subspace, d_ / m_
  int64_t ks_ = 0;  // codewords per subspace
  Tensor centroids_;   // [nlist, d] coarse quantizer
  Tensor codebooks_;   // [m * ks, ds]
  std::vector<uint8_t> codes_;  // [n, m]
  std::vector<std::vector<int64_t>> lists_;
};

}  // namespace unimatch::ann

#endif  // UNIMATCH_ANN_PQ_H_
