// HNSW (Hierarchical Navigable Small World) approximate top-k index.
//
// The third serving backend next to the exact scan and IVF. HNSW gives
// logarithmic-ish query time on large catalogs at high recall — the standard
// choice for two-tower retrieval at the user-matrix scale of user targeting
// (millions of rows in the paper's deployment).
//
// Implementation follows Malkov & Yashunin (2016): multi-layer proximity
// graph, greedy descent through the upper layers, beam search (ef) on the
// bottom layer, neighbor selection by simple best-M pruning. Similarity is
// inner product (cosine on l2-normalized embeddings).

#ifndef UNIMATCH_ANN_HNSW_H_
#define UNIMATCH_ANN_HNSW_H_

#include <utility>
#include <vector>

#include "src/ann/index.h"
#include "src/tensor/quant.h"
#include "src/util/random.h"

namespace unimatch {
class ThreadPool;
}  // namespace unimatch

namespace unimatch::ann {

struct HnswConfig {
  /// Max neighbors per node on layers > 0 (bottom layer gets 2M).
  int m = 16;
  /// Beam width during construction.
  int ef_construction = 100;
  /// Beam width during search (>= k for good recall).
  int ef_search = 64;
  uint64_t seed = 17;
  /// Optional pool for parallel graph construction. With nullptr (or a
  /// 1-thread pool, or a small catalog) Build stays serial and fully
  /// deterministic for a given seed. A multi-thread pool parallelizes the
  /// node insertions with per-node locks: the resulting graph depends on
  /// insertion interleaving (recall properties hold, exact edges vary).
  ThreadPool* pool = nullptr;
  /// Element type of the stored vectors (src/tensor/quant.h). kF16/kI8
  /// shrink the table 2x/~4x; graph construction and every search score
  /// against the quantized rows (quantized-distance HNSW), so the graph is
  /// consistent with what serving later scores. The float input is only
  /// held for the duration of Build (neighbor pruning needs float query
  /// rows) and released before Build returns.
  ScalarType storage = ScalarType::kF32;
};

class HnswIndex : public Index {
 public:
  explicit HnswIndex(HnswConfig config = {}) : config_(config) {}

  Status Build(const Tensor& vectors) override;
  int64_t size() const override { return n_; }
  int64_t dim() const override { return d_; }

  const HnswConfig& config() const { return config_; }
  /// Number of graph layers (for tests/inspection).
  int num_layers() const { return static_cast<int>(layers_.size()); }
  /// The (possibly quantized) stored table — bytes accounting and tests.
  const QuantizedMatrix& table() const { return quant_; }

 protected:
  void MultiSearchImpl(const float* queries, int64_t nq, int k,
                       SearchWorkspace& ws, SearchResult* out) const override;

 private:
  // layers_[l][node] = adjacency list of `node` on layer l. Nodes absent
  // from a layer have an empty list.
  using Adjacency = std::vector<std::vector<int64_t>>;

  // Per-node + entry-point locks, live only while a parallel Build runs.
  // nullptr (serial build, and every post-build Search) means lock-free
  // access to the adjacency lists.
  struct BuildSync;

  float Score(const float* query, int64_t node) const;
  // Greedy single-entry descent on one layer. `ws` provides the locked
  // adjacency snapshot buffer for concurrent builds.
  int64_t GreedyStep(const float* query, int64_t entry, int layer,
                     SearchWorkspace& ws, BuildSync* sync = nullptr) const;
  // Beam search on one layer; returns up to `ef` best (score, node) pairs,
  // best first, in ws.layer_results() (valid until the next SearchLayer on
  // the same workspace). All scratch — the epoch-stamped visited set and
  // both beam heaps — lives in `ws`; no per-call allocation.
  const std::vector<std::pair<float, int64_t>>& SearchLayer(
      const float* query, int64_t entry, int ef, int layer,
      SearchWorkspace& ws, BuildSync* sync = nullptr) const;
  void Connect(int64_t node, int layer,
               const std::vector<std::pair<float, int64_t>>& candidates,
               BuildSync* sync = nullptr);
  void Prune(int64_t node, int layer);
  // Full insertion of node i: greedy descent from the current entry point,
  // beam search + Connect per layer, entry-point raise. Serial builds track
  // the entry state in entry_point_ / *entry_level; parallel builds keep it
  // in BuildSync behind its annotated entry mutex and ignore the parameter.
  void InsertNode(int64_t i, int* entry_level, BuildSync* sync);

  HnswConfig config_;
  int64_t n_ = 0, d_ = 0;
  // Quantized (or f32-aliased) stored rows; what Score reads.
  QuantizedMatrix quant_;
  // Float alias of the input, alive only during Build: Prune and InsertNode
  // need float query rows. Cleared before Build returns when storage is
  // quantized, so the f32 table does not outlive construction.
  Tensor vectors_;
  std::vector<Adjacency> layers_;
  std::vector<int> node_level_;
  int64_t entry_point_ = -1;
};

}  // namespace unimatch::ann

#endif  // UNIMATCH_ANN_HNSW_H_
