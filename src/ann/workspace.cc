#include "src/ann/workspace.h"

namespace unimatch::ann {

SearchWorkspace& ThreadLocalSearchWorkspace() {
  // One workspace per thread, constructed on first search and alive until
  // thread exit. Its pooled Storage buffers return to the global BufferPool
  // (never destroyed) when the thread goes away.
  thread_local SearchWorkspace workspace;
  return workspace;
}

}  // namespace unimatch::ann
