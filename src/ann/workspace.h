// Reusable per-thread search scratch for the ANN indexes — the zero-alloc
// substrate under both single-query Search and batched MultiSearch.
//
// Every index backend used to rebuild its entire search state per query: an
// unordered_set of visited nodes plus two priority queues in HNSW's beam
// search, a fresh scores(n) vector in the quantized flat scan, a fresh ADC
// table in IVF-PQ. A SearchWorkspace owns all of that state once per thread
// and hands it back query after query:
//
//   * an epoch-stamped visited array — O(1) clear per search (bump the
//     epoch), no hashing, no rehash allocations;
//   * candidate/best heap vectors maintained with std::push_heap/pop_heap —
//     std::priority_queue is specified in terms of exactly these algorithms,
//     so extraction order is identical, but the vectors persist across
//     queries;
//   * pooled float scratch (scores, ADC tables, gathered query rows) backed
//     by tensor::Storage, so growth goes through the BufferPool and shows up
//     in its acquire/miss counters — the bench_batch_exec allocs/query gate
//     reads those counters directly;
//   * reusable TopK / BatchTopK selectors whose heap storage also persists.
//
// A workspace is single-threaded by design: each searching thread uses its
// own, normally via ThreadLocalSearchWorkspace(). Nothing here locks.
//
// tools/lint.py (rule ann-search-container) forbids std::unordered_set and
// std::priority_queue construction elsewhere in src/ann — search-path
// containers belong here, where they are reused, not re-allocated.

#ifndef UNIMATCH_ANN_WORKSPACE_H_
#define UNIMATCH_ANN_WORKSPACE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/tensor/storage.h"

namespace unimatch::ann {

struct SearchResult {
  int64_t id = -1;
  float score = 0.0f;
};

namespace heap_internal {

/// (score, id) heap element shared by the top-k selectors and the HNSW beam.
using Entry = std::pair<float, int64_t>;

/// Min-heap-by-score ordering with the repo's tie-break: among equal scores
/// the larger id sits at the top and is evicted first, so a full selector
/// keeps the k smallest ids of a tied score band. Identical to the
/// comparator the pre-workspace std::priority_queue TopK used.
struct MinScoreCmp {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // larger id evicted first on ties
  }
};

}  // namespace heap_internal

/// Keeps the k largest (score, id) pairs using a min-heap over a reusable
/// vector (std::push_heap/pop_heap — same algorithms, and therefore the
/// same extraction order, as the std::priority_queue it replaced), then
/// returns them sorted descending (ties broken toward smaller ids).
class TopK {
 public:
  explicit TopK(int k = 1) : k_(k) {}

  /// Re-arms the selector for a new query; keeps the heap's capacity.
  void Reset(int k) {
    k_ = k;
    heap_.clear();
  }

  void Offer(int64_t id, float score) {
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.push_back({score, id});
      std::push_heap(heap_.begin(), heap_.end(), heap_internal::MinScoreCmp{});
    } else if (score > heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end(), heap_internal::MinScoreCmp{});
      heap_.back() = {score, id};
      std::push_heap(heap_.begin(), heap_.end(), heap_internal::MinScoreCmp{});
    }
  }

  std::vector<SearchResult> Take() {
    std::vector<SearchResult> out(heap_.size());
    TakeInto(out.data(), static_cast<int>(heap_.size()));
    return out;
  }

  /// Drains into `out[0..pad)`: the kept results sorted descending, then
  /// {id=-1, score=0} padding when fewer than `pad` rows were offered.
  void TakeInto(SearchResult* out, int pad) {
    const int n = static_cast<int>(heap_.size());
    for (int i = n - 1; i >= 0; --i) {
      out[i] = {heap_.front().second, heap_.front().first};
      std::pop_heap(heap_.begin(), heap_.end(), heap_internal::MinScoreCmp{});
      heap_.pop_back();
    }
    for (int i = n; i < pad; ++i) out[i] = {-1, 0.0f};
  }

 private:
  int k_;
  std::vector<heap_internal::Entry> heap_;
};

/// nq independent TopK selectors over one flat [nq * k] entry slab — the
/// selector behind the query-major blocked scans, where every query offers
/// from the same cache-resident catalog block before the block advances.
/// Per-query semantics (ordering, tie-breaks) are exactly TopK's.
class BatchTopK {
 public:
  void Reset(int64_t nq, int k) {
    nq_ = nq;
    k_ = k;
    entries_.resize(static_cast<size_t>(nq) * k);
    sizes_.assign(static_cast<size_t>(nq), 0);
  }

  void Offer(int64_t q, int64_t id, float score) {
    heap_internal::Entry* h = entries_.data() + q * k_;
    int& sz = sizes_[q];
    if (sz < k_) {
      h[sz] = {score, id};
      ++sz;
      std::push_heap(h, h + sz, heap_internal::MinScoreCmp{});
    } else if (score > h[0].first) {
      std::pop_heap(h, h + k_, heap_internal::MinScoreCmp{});
      h[k_ - 1] = {score, id};
      std::push_heap(h, h + k_, heap_internal::MinScoreCmp{});
    }
  }

  /// Drains all queries into `out` query-major: out[q * k + r] is query q's
  /// rank-r result, padded with {id=-1, score=0} past the offered rows.
  void TakeInto(SearchResult* out) {
    for (int64_t q = 0; q < nq_; ++q) {
      heap_internal::Entry* h = entries_.data() + q * k_;
      SearchResult* o = out + q * k_;
      const int n = sizes_[q];
      for (int i = n - 1; i >= 0; --i) {
        o[i] = {h[0].second, h[0].first};
        std::pop_heap(h, h + i + 1, heap_internal::MinScoreCmp{});
      }
      for (int i = n; i < k_; ++i) o[i] = {-1, 0.0f};
    }
  }

 private:
  int64_t nq_ = 0;
  int k_ = 0;
  std::vector<heap_internal::Entry> entries_;  // [nq * k]
  std::vector<int> sizes_;                     // offered rows per query
};

/// Per-thread scratch for index search. Grow-once: every buffer keeps its
/// high-water capacity across queries, so a steady-state search performs no
/// heap or pool allocation at all (the bench_batch_exec hard gate).
class SearchWorkspace {
 public:
  SearchWorkspace() = default;
  SearchWorkspace(const SearchWorkspace&) = delete;
  SearchWorkspace& operator=(const SearchWorkspace&) = delete;

  // --- epoch-stamped visited set over node ids [0, n) -------------------
  // Replaces HNSW's per-query unordered_set: marking every stamp stale is
  // one epoch increment, not a clear() walk or a fresh hash table.

  void BeginVisitEpoch(int64_t n) {
    if (static_cast<int64_t>(visit_stamp_.size()) < n) {
      visit_stamp_.resize(n, 0);
    }
    if (++visit_epoch_ == 0) {  // stamp wrap: all stamps are stale anyway
      std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0u);
      visit_epoch_ = 1;
    }
    visits_this_epoch_ = 0;
  }

  /// True the first time `node` is visited this epoch.
  bool Visit(int64_t node) {
    if (visit_stamp_[node] == visit_epoch_) return false;
    visit_stamp_[node] = visit_epoch_;
    ++visits_this_epoch_;
    return true;
  }

  int64_t visits_this_epoch() const { return visits_this_epoch_; }

  // --- pooled float scratch (tensor::Storage, BufferPool-counted) -------

  /// Blocked score matrix for the flat scans ([nq, block]).
  float* Scores(int64_t n) { return Grow(&scores_, n); }
  /// Batched ADC slab for IVF-PQ ([m, nq, ks]).
  float* Adc(int64_t n) { return Grow(&adc_, n); }
  /// Gathered (dequantized) query rows for the serving snapshot layer.
  float* Queries(int64_t n) { return Grow(&queries_, n); }
  /// Decoded catalog block for the quantized flat scan ([block, d]) —
  /// separate from Queries(), which the snapshot layer holds live across
  /// the MultiSearch call that fills this buffer.
  float* DequantBlock(int64_t n) { return Grow(&dequant_block_, n); }

  // --- reusable selectors and heap vectors ------------------------------

  /// Coarse-probe selector (IVF / IVF-PQ centroid ranking), re-armed to k.
  TopK& coarse_topk(int k) {
    coarse_topk_.Reset(k);
    return coarse_topk_;
  }
  /// Per-query result selector, re-armed to k.
  TopK& result_topk(int k) {
    result_topk_.Reset(k);
    return result_topk_;
  }
  /// Query-major selector for the blocked flat scans (caller Resets).
  BatchTopK& batch_topk() { return batch_topk_; }

  /// HNSW beam-search heaps: candidates (max-heap) and best (min-heap).
  std::vector<std::pair<float, int64_t>>& candidates() { return candidates_; }
  std::vector<std::pair<float, int64_t>>& best() { return best_; }
  /// SearchLayer's result vector (best-first), reused across layers.
  std::vector<std::pair<float, int64_t>>& layer_results() {
    return layer_results_;
  }
  /// Locked adjacency-list copy for concurrent HNSW builds.
  std::vector<int64_t>& neighbor_snapshot() { return neighbor_snapshot_; }

  /// Coarse-probe result rows (TopK::TakeInto target).
  SearchResult* ProbeScratch(int n) {
    probe_scratch_.resize(static_cast<size_t>(n));
    return probe_scratch_.data();
  }
  /// Batched per-query result rows for the serving snapshot layer.
  SearchResult* ResultScratch(int64_t n) {
    result_scratch_.resize(static_cast<size_t>(n));
    return result_scratch_.data();
  }
  /// Request-slot -> compacted-query mapping for the snapshot layer.
  std::vector<int64_t>& gather_slots() { return gather_slots_; }

 private:
  float* Grow(Storage* slot, int64_t n) {
    if (slot->size() < n) *slot = Storage::Allocate(n);
    return slot->data();
  }

  std::vector<uint32_t> visit_stamp_;
  uint32_t visit_epoch_ = 0;
  int64_t visits_this_epoch_ = 0;

  Storage scores_;
  Storage adc_;
  Storage queries_;
  Storage dequant_block_;

  TopK coarse_topk_;
  TopK result_topk_;
  BatchTopK batch_topk_;
  std::vector<std::pair<float, int64_t>> candidates_;
  std::vector<std::pair<float, int64_t>> best_;
  std::vector<std::pair<float, int64_t>> layer_results_;
  std::vector<int64_t> neighbor_snapshot_;
  std::vector<SearchResult> probe_scratch_;
  std::vector<SearchResult> result_scratch_;
  std::vector<int64_t> gather_slots_;
};

/// The calling thread's workspace — one per thread, created on first use.
/// The single-query Search wrapper, the HNSW build path, and the serving
/// snapshot layer all search through this instance, so a thread's steady
/// state recycles one set of buffers no matter which backend it queries.
SearchWorkspace& ThreadLocalSearchWorkspace();

}  // namespace unimatch::ann

#endif  // UNIMATCH_ANN_WORKSPACE_H_
