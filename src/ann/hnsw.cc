#include "src/ann/hnsw.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>

#include "src/obs/obs.h"
#include "src/tensor/kernels.h"
#include "src/util/contract.h"
#include "src/util/mutex.h"
#include "src/util/logging.h"
#include "src/util/threadpool.h"

namespace unimatch::ann {

namespace {

// Below this many nodes the per-insert work is too small for the locking
// overhead of the parallel build to pay off.
constexpr int64_t kParallelBuildMinNodes = 128;

}  // namespace

struct HnswIndex::BuildSync {
  BuildSync(int64_t n, int64_t entry, int level)
      : entry_point(entry), entry_level(level) {
    for (int64_t i = 0; i < n; ++i) {
      node_locks.emplace_back(lockrank::kHnswNode, "ann.hnsw.node", i);
    }
  }
  // node_locks[i] guards layers_[l][i] for every layer l. Multi-node
  // sections (Connect) lock the smaller node id first; the node id doubles
  // as the lock-rank order token, so the validator aborts any same-rank
  // acquisition that breaks that discipline. (The adjacency lists live in
  // HnswIndex::layers_, whose per-element guarding by these dynamically
  // indexed locks is beyond what UM_GUARDED_BY can express — the protocol
  // is enforced here by the order tokens plus review.) A deque keeps the
  // non-movable Mutex objects at stable addresses.
  std::deque<Mutex> node_locks;
  // Guards the build-time entry point/level. Ranked just below the node
  // locks; never actually nested with them today.
  Mutex entry_mutex{lockrank::kHnswEntry, "ann.hnsw.entry"};
  int64_t entry_point UM_GUARDED_BY(entry_mutex);
  int entry_level UM_GUARDED_BY(entry_mutex);
};

float HnswIndex::Score(const float* query, int64_t node) const {
  return quant_.Score(node, query);
}

Status HnswIndex::Build(const Tensor& vectors) {
  if (vectors.rank() != 2) {
    return Status::InvalidArgument("index expects a [N, d] matrix");
  }
  if (vectors.dim(0) == 0) {
    return Status::InvalidArgument("empty index");
  }
  UM_SCOPED_TIMER("ann.hnsw.build.ms");
  UM_COUNTER_INC("ann.hnsw.builds");
  UM_GAUGE_SET("ann.hnsw.nodes", static_cast<double>(vectors.dim(0)));
  // A NaN embedding poisons greedy search comparisons silently; reject it
  // at the boundary instead.
  UM_CHECK_FINITE(vectors) << "HnswIndex::Build embeddings";
  vectors_ = vectors;  // float alias; only held until Build returns
  n_ = vectors.dim(0);
  d_ = vectors.dim(1);
  // The graph is built against the quantized rows so construction-time
  // neighborhoods match what Search will score (quantized-distance HNSW).
  quant_ = QuantizedMatrix::Quantize(vectors, config_.storage);
  const int64_t n = n_;
  Rng rng(config_.seed);

  // Level assignment: geometric with p = 1/e scaled by 1/ln(M).
  const double ml = 1.0 / std::log(std::max(2.0, double(config_.m)));
  node_level_.assign(n, 0);
  int max_level = 0;
  for (int64_t i = 0; i < n; ++i) {
    double u;
    do {
      u = rng.NextDouble();
    } while (u <= 1e-300);
    const int level = static_cast<int>(-std::log(u) * ml);
    node_level_[i] = level;
    max_level = std::max(max_level, level);
  }

  layers_.assign(max_level + 1, Adjacency(n));
  // Node 0 seeds the graph; everyone else inserts against it.
  entry_point_ = 0;
  int entry_level = node_level_[0];

  ThreadPool* pool = config_.pool;
  if (pool != nullptr && pool->num_threads() > 1 &&
      n > kParallelBuildMinNodes) {
    UM_COUNTER_INC("ann.hnsw.build.parallel");
    UM_GAUGE_SET("ann.hnsw.build.threads",
                 static_cast<double>(pool->num_threads()));
    BuildSync sync(n, entry_point_, entry_level);
    pool->ParallelFor(
        1, n, [&](int64_t i) { InsertNode(i, &entry_level, &sync); },
        /*min_shard=*/8);
    // Workers have joined; publish the final entry point back to the index.
    MutexLock lk(&sync.entry_mutex);
    entry_point_ = sync.entry_point;
  } else {
    for (int64_t i = 1; i < n; ++i) InsertNode(i, &entry_level, nullptr);
  }
  if (config_.storage != ScalarType::kF32) {
    vectors_ = Tensor();  // drop the float table; quant_ serves from here on
  }
  return Status::OK();
}

void HnswIndex::InsertNode(int64_t i, int* entry_level, BuildSync* sync) {
  const int level = node_level_[i];
  const float* q = vectors_.data() + i * dim();
  // Build-path searches run on the inserting thread's workspace: a parallel
  // build's workers each reuse their own visited stamps and beam heaps
  // across every insertion they perform.
  SearchWorkspace& ws = ThreadLocalSearchWorkspace();
  int64_t entry;
  int elevel;
  if (sync != nullptr) {
    MutexLock lk(&sync->entry_mutex);
    entry = sync->entry_point;
    elevel = sync->entry_level;
  } else {
    entry = entry_point_;
    elevel = *entry_level;
  }
  // Greedy descent through layers above this node's level.
  for (int l = elevel; l > level; --l) {
    entry = GreedyStep(q, entry, l, ws, sync);
  }
  // Insert with beam search on each layer from min(level, elevel) down to 0.
  for (int l = std::min(level, elevel); l >= 0; --l) {
    const auto& candidates =
        SearchLayer(q, entry, config_.ef_construction, l, ws, sync);
    Connect(i, l, candidates, sync);
    entry = candidates.empty() ? entry : candidates.front().second;
  }
  if (level > elevel) {
    if (sync != nullptr) {
      MutexLock lk(&sync->entry_mutex);
      // Re-check: another thread may have raised the entry meanwhile.
      if (level > sync->entry_level) {
        sync->entry_point = i;
        sync->entry_level = level;
      }
    } else {
      entry_point_ = i;
      *entry_level = level;
    }
  }
}

int64_t HnswIndex::GreedyStep(const float* query, int64_t entry, int layer,
                              SearchWorkspace& ws, BuildSync* sync) const {
  int64_t current = entry;
  float best = Score(query, current);
  std::vector<int64_t>& snapshot = ws.neighbor_snapshot();
  bool improved = true;
  while (improved) {
    improved = false;
    const std::vector<int64_t>* nbrs = &layers_[layer][current];
    if (sync != nullptr) {
      // Concurrent inserts mutate adjacency lists; walk a locked copy.
      MutexLock lk(&sync->node_locks[current]);
      snapshot = layers_[layer][current];
      nbrs = &snapshot;
    }
    for (int64_t nb : *nbrs) {
      const float s = Score(query, nb);
      if (s > best) {
        best = s;
        current = nb;
        improved = true;
      }
    }
  }
  return current;
}

const std::vector<std::pair<float, int64_t>>& HnswIndex::SearchLayer(
    const float* query, int64_t entry, int ef, int layer, SearchWorkspace& ws,
    BuildSync* sync) const {
  // Max-heap of candidates to expand; min-heap of current best `ef`. Both
  // live in workspace vectors driven by std::push_heap/pop_heap — the
  // algorithms std::priority_queue is specified over, so the expansion and
  // extraction order is exactly the pre-workspace behavior, but the
  // storage (and the epoch-stamped visited set replacing the per-call
  // unordered_set) is reused across searches.
  using Entry = std::pair<float, int64_t>;
  std::vector<Entry>& candidates = ws.candidates();  // best first
  std::vector<Entry>& best = ws.best();
  candidates.clear();
  best.clear();
  ws.BeginVisitEpoch(n_);
  std::vector<int64_t>& snapshot = ws.neighbor_snapshot();

  const float es = Score(query, entry);
  candidates.push_back({es, entry});
  best.push_back({es, entry});
  ws.Visit(entry);

  while (!candidates.empty()) {
    const auto [cs, cn] = candidates.front();
    std::pop_heap(candidates.begin(), candidates.end());
    candidates.pop_back();
    if (static_cast<int>(best.size()) >= ef && cs < best.front().first) break;
    const std::vector<int64_t>* nbrs = &layers_[layer][cn];
    if (sync != nullptr) {
      MutexLock lk(&sync->node_locks[cn]);
      snapshot = layers_[layer][cn];
      nbrs = &snapshot;
    }
    for (int64_t nb : *nbrs) {
      if (!ws.Visit(nb)) continue;
      const float s = Score(query, nb);
      if (static_cast<int>(best.size()) < ef || s > best.front().first) {
        candidates.push_back({s, nb});
        std::push_heap(candidates.begin(), candidates.end());
        best.push_back({s, nb});
        std::push_heap(best.begin(), best.end(), std::greater<>());
        if (static_cast<int>(best.size()) > ef) {
          std::pop_heap(best.begin(), best.end(), std::greater<>());
          best.pop_back();
        }
      }
    }
  }
  UM_COUNTER_ADD("ann.hnsw.nodes_visited", ws.visits_this_epoch());
  std::vector<Entry>& out = ws.layer_results();
  out.clear();
  while (!best.empty()) {
    out.push_back(best.front());
    std::pop_heap(best.begin(), best.end(), std::greater<>());
    best.pop_back();
  }
  std::reverse(out.begin(), out.end());  // best first
  return out;
}

void HnswIndex::Connect(
    int64_t node, int layer,
    const std::vector<std::pair<float, int64_t>>& candidates,
    BuildSync* sync) {
  const int max_links = layer == 0 ? 2 * config_.m : config_.m;
  auto& adj = layers_[layer];
  const int take = std::min<int>(max_links, candidates.size());
  for (int k = 0; k < take; ++k) {
    const int64_t nb = candidates[k].second;
    if (nb == node) continue;
    if (sync != nullptr) {
      // Lock both endpoints, smaller node id first (deterministic order,
      // no deadlock against a concurrent Connect of the reverse pair; the
      // lock-rank validator checks the ascending-id order at runtime).
      MutexLock lk_first(&sync->node_locks[std::min(node, nb)]);
      MutexLock lk_second(&sync->node_locks[std::max(node, nb)]);
      adj[node].push_back(nb);
      adj[nb].push_back(node);
      if (static_cast<int>(adj[nb].size()) > max_links) Prune(nb, layer);
    } else {
      adj[node].push_back(nb);
      adj[nb].push_back(node);
      if (static_cast<int>(adj[nb].size()) > max_links) Prune(nb, layer);
    }
  }
}

void HnswIndex::Prune(int64_t node, int layer) {
  const int max_links = layer == 0 ? 2 * config_.m : config_.m;
  auto& links = layers_[layer][node];
  if (static_cast<int>(links.size()) <= max_links) return;
  const float* v = vectors_.data() + node * dim();
  // Dedupe by id first, then keep the best-scoring neighbors.
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  std::sort(links.begin(), links.end(), [&](int64_t a, int64_t b) {
    return Score(v, a) > Score(v, b);
  });
  if (static_cast<int>(links.size()) > max_links) links.resize(max_links);
}

void HnswIndex::MultiSearchImpl(const float* queries, int64_t nq, int k,
                                SearchWorkspace& ws,
                                SearchResult* out) const {
  UM_SCOPED_TIMER("ann.hnsw.search.ms");
  UM_COUNTER_ADD("ann.hnsw.searches", nq);
  UM_CHECK_GE(entry_point_, 0);
  const int ef = std::max(config_.ef_search, k);
  for (int64_t q = 0; q < nq; ++q) {
    const float* qv = queries + q * d_;
    int64_t entry = entry_point_;
    for (int l = static_cast<int>(layers_.size()) - 1; l > 0; --l) {
      entry = GreedyStep(qv, entry, l, ws);
    }
    const auto& found = SearchLayer(qv, entry, ef, 0, ws);
    SearchResult* o = out + q * k;
    const int take = std::min<int>(k, static_cast<int>(found.size()));
    for (int r = 0; r < take; ++r) {
      o[r] = {found[r].second, found[r].first};
    }
    for (int r = take; r < k; ++r) o[r] = {-1, 0.0f};
  }
}

}  // namespace unimatch::ann
