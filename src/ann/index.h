// Top-k retrieval indexes over embedding matrices.
//
// The two-tower architecture exists precisely so embeddings can be indexed
// and served with (approximate) nearest-neighbor search (Sec. III-B1). Both
// indexes score by inner product, which on l2-normalized embeddings equals
// cosine similarity.

#ifndef UNIMATCH_ANN_INDEX_H_
#define UNIMATCH_ANN_INDEX_H_

#include <memory>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace unimatch::ann {

struct SearchResult {
  int64_t id = -1;
  float score = 0.0f;
};

class Index {
 public:
  virtual ~Index() = default;

  /// Indexes the rows of `vectors` ([N, d]); row index = id.
  virtual Status Build(const Tensor& vectors) = 0;

  /// Top-k ids by inner product with `query` ([d]), descending.
  virtual std::vector<SearchResult> Search(const float* query,
                                           int k) const = 0;

  virtual int64_t size() const = 0;
  virtual int64_t dim() const = 0;
};

/// Exact scan; multi-threaded over rows for large catalogs.
class BruteForceIndex : public Index {
 public:
  Status Build(const Tensor& vectors) override;
  std::vector<SearchResult> Search(const float* query, int k) const override;
  int64_t size() const override { return vectors_.rank() == 2 ? vectors_.dim(0) : 0; }
  int64_t dim() const override { return vectors_.rank() == 2 ? vectors_.dim(1) : 0; }

 private:
  Tensor vectors_;
};

struct IvfConfig {
  /// Number of coarse clusters; defaults to ~sqrt(N) when 0.
  int64_t nlist = 0;
  /// Clusters scanned per query.
  int64_t nprobe = 8;
  int kmeans_iters = 10;
  uint64_t seed = 31;
};

/// Inverted-file index: spherical k-means coarse quantizer + per-cluster
/// exact scan of `nprobe` nearest clusters.
class IvfIndex : public Index {
 public:
  explicit IvfIndex(IvfConfig config = {}) : config_(config) {}

  Status Build(const Tensor& vectors) override;
  std::vector<SearchResult> Search(const float* query, int k) const override;
  int64_t size() const override { return vectors_.rank() == 2 ? vectors_.dim(0) : 0; }
  int64_t dim() const override { return vectors_.rank() == 2 ? vectors_.dim(1) : 0; }

  const IvfConfig& config() const { return config_; }

 private:
  IvfConfig config_;
  Tensor vectors_;
  Tensor centroids_;  // [nlist, d]
  std::vector<std::vector<int64_t>> lists_;
};

/// Measured recall of `index` against an exact scan over `queries` rows.
double MeasureRecallAtK(const Index& index, const BruteForceIndex& exact,
                        const Tensor& queries, int k);

}  // namespace unimatch::ann

#endif  // UNIMATCH_ANN_INDEX_H_
