// Top-k retrieval indexes over embedding matrices.
//
// The two-tower architecture exists precisely so embeddings can be indexed
// and served with (approximate) nearest-neighbor search (Sec. III-B1). Both
// indexes score by inner product, which on l2-normalized embeddings equals
// cosine similarity.
//
// Execution model: the primitive operation is MultiSearch — nq queries
// answered in one call against a caller-provided SearchWorkspace
// (src/ann/workspace.h), so batched serving amortizes scratch state and the
// flat scans run query-major blocked kernel sweeps. Single-query Search is
// a thin nq=1 wrapper over the same path (thread-local workspace), and is
// guaranteed to return exactly what MultiSearch returns for that query at
// any batch size: the blocked scans tile the catalog rows independently of
// nq, so every (query, row) score is bitwise identical either way.

#ifndef UNIMATCH_ANN_INDEX_H_
#define UNIMATCH_ANN_INDEX_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/ann/workspace.h"
#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace unimatch::ann {

/// Spherical k-means by inner product over the rows of `vectors` ([N, d]):
/// centroids start from `nlist` random distinct rows (seeded, deterministic)
/// and iterate assignment (max inner product) / update (member mean,
/// re-normalized; an empty cluster keeps its centroid). Returns the
/// [nlist, d] centroids and, when `assign` is non-null, the final
/// assignment of every row. The coarse quantizer behind IvfIndex and
/// IvfPqIndex.
Tensor TrainSphericalKMeans(const Tensor& vectors, int64_t nlist, int iters,
                            uint64_t seed, std::vector<int64_t>* assign);

class Index {
 public:
  virtual ~Index() = default;

  /// Indexes the rows of `vectors` ([N, d]); row index = id.
  virtual Status Build(const Tensor& vectors) = 0;

  /// Batched top-k: answers `nq` queries (row-major [nq, d]) in one call,
  /// writing nq * k results query-major into `out` (out[q * k + r] is
  /// query q's rank-r result, descending score, ties toward smaller ids;
  /// padded with {id=-1, score=0} when fewer than k rows exist). All
  /// scratch comes from `ws`; a steady-state call allocates nothing.
  void MultiSearch(const float* queries, int64_t nq, int k,
                   SearchWorkspace& ws, SearchResult* out) const;

  /// Top-k ids by inner product with `query` ([d]), descending. An nq=1
  /// MultiSearch over the calling thread's workspace; returns min(k, size)
  /// results.
  std::vector<SearchResult> Search(const float* query, int k) const;

  virtual int64_t size() const = 0;
  virtual int64_t dim() const = 0;

 protected:
  /// Backend hook behind MultiSearch (which owns the shared contracts and
  /// the ann.batch.* counters). Same output contract as MultiSearch.
  virtual void MultiSearchImpl(const float* queries, int64_t nq, int k,
                               SearchWorkspace& ws,
                               SearchResult* out) const = 0;
};

/// Exact scan; query-major blocked through the gemm kernels.
class BruteForceIndex : public Index {
 public:
  Status Build(const Tensor& vectors) override;
  int64_t size() const override { return vectors_.rank() == 2 ? vectors_.dim(0) : 0; }
  int64_t dim() const override { return vectors_.rank() == 2 ? vectors_.dim(1) : 0; }

 protected:
  void MultiSearchImpl(const float* queries, int64_t nq, int k,
                       SearchWorkspace& ws, SearchResult* out) const override;

 private:
  Tensor vectors_;
};

struct IvfConfig {
  /// Number of coarse clusters; defaults to ~sqrt(N) when 0.
  int64_t nlist = 0;
  /// Clusters scanned per query.
  int64_t nprobe = 8;
  int kmeans_iters = 10;
  uint64_t seed = 31;
};

/// Inverted-file index: spherical k-means coarse quantizer + per-cluster
/// exact scan of `nprobe` nearest clusters.
class IvfIndex : public Index {
 public:
  explicit IvfIndex(IvfConfig config = {}) : config_(config) {}

  Status Build(const Tensor& vectors) override;
  int64_t size() const override { return vectors_.rank() == 2 ? vectors_.dim(0) : 0; }
  int64_t dim() const override { return vectors_.rank() == 2 ? vectors_.dim(1) : 0; }

  const IvfConfig& config() const { return config_; }

 protected:
  void MultiSearchImpl(const float* queries, int64_t nq, int k,
                       SearchWorkspace& ws, SearchResult* out) const override;

 private:
  IvfConfig config_;
  Tensor vectors_;
  Tensor centroids_;  // [nlist, d]
  std::vector<std::vector<int64_t>> lists_;
};

/// Measured recall of `index` against an exact scan over `queries` rows.
double MeasureRecallAtK(const Index& index, const BruteForceIndex& exact,
                        const Tensor& queries, int k);

}  // namespace unimatch::ann

#endif  // UNIMATCH_ANN_INDEX_H_
