// Top-k retrieval indexes over embedding matrices.
//
// The two-tower architecture exists precisely so embeddings can be indexed
// and served with (approximate) nearest-neighbor search (Sec. III-B1). Both
// indexes score by inner product, which on l2-normalized embeddings equals
// cosine similarity.

#ifndef UNIMATCH_ANN_INDEX_H_
#define UNIMATCH_ANN_INDEX_H_

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/status.h"

namespace unimatch::ann {

struct SearchResult {
  int64_t id = -1;
  float score = 0.0f;
};

/// Keeps the k largest (score, id) pairs using a min-heap, then returns
/// them sorted descending (ties broken toward smaller ids). Shared by the
/// index implementations (brute force, IVF, IVF-PQ, quantized flat).
class TopK {
 public:
  explicit TopK(int k) : k_(k) {}

  void Offer(int64_t id, float score) {
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.push({score, id});
    } else if (score > heap_.top().first) {
      heap_.pop();
      heap_.push({score, id});
    }
  }

  std::vector<SearchResult> Take() {
    std::vector<SearchResult> out(heap_.size());
    for (int64_t i = static_cast<int64_t>(heap_.size()) - 1; i >= 0; --i) {
      out[i] = {heap_.top().second, heap_.top().first};
      heap_.pop();
    }
    return out;
  }

 private:
  using Entry = std::pair<float, int64_t>;
  struct Cmp {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;  // larger id evicted first on ties
    }
  };
  int k_;
  std::priority_queue<Entry, std::vector<Entry>, Cmp> heap_;
};

/// Spherical k-means by inner product over the rows of `vectors` ([N, d]):
/// centroids start from `nlist` random distinct rows (seeded, deterministic)
/// and iterate assignment (max inner product) / update (member mean,
/// re-normalized; an empty cluster keeps its centroid). Returns the
/// [nlist, d] centroids and, when `assign` is non-null, the final
/// assignment of every row. The coarse quantizer behind IvfIndex and
/// IvfPqIndex.
Tensor TrainSphericalKMeans(const Tensor& vectors, int64_t nlist, int iters,
                            uint64_t seed, std::vector<int64_t>* assign);

class Index {
 public:
  virtual ~Index() = default;

  /// Indexes the rows of `vectors` ([N, d]); row index = id.
  virtual Status Build(const Tensor& vectors) = 0;

  /// Top-k ids by inner product with `query` ([d]), descending.
  virtual std::vector<SearchResult> Search(const float* query,
                                           int k) const = 0;

  virtual int64_t size() const = 0;
  virtual int64_t dim() const = 0;
};

/// Exact scan; multi-threaded over rows for large catalogs.
class BruteForceIndex : public Index {
 public:
  Status Build(const Tensor& vectors) override;
  std::vector<SearchResult> Search(const float* query, int k) const override;
  int64_t size() const override { return vectors_.rank() == 2 ? vectors_.dim(0) : 0; }
  int64_t dim() const override { return vectors_.rank() == 2 ? vectors_.dim(1) : 0; }

 private:
  Tensor vectors_;
};

struct IvfConfig {
  /// Number of coarse clusters; defaults to ~sqrt(N) when 0.
  int64_t nlist = 0;
  /// Clusters scanned per query.
  int64_t nprobe = 8;
  int kmeans_iters = 10;
  uint64_t seed = 31;
};

/// Inverted-file index: spherical k-means coarse quantizer + per-cluster
/// exact scan of `nprobe` nearest clusters.
class IvfIndex : public Index {
 public:
  explicit IvfIndex(IvfConfig config = {}) : config_(config) {}

  Status Build(const Tensor& vectors) override;
  std::vector<SearchResult> Search(const float* query, int k) const override;
  int64_t size() const override { return vectors_.rank() == 2 ? vectors_.dim(0) : 0; }
  int64_t dim() const override { return vectors_.rank() == 2 ? vectors_.dim(1) : 0; }

  const IvfConfig& config() const { return config_; }

 private:
  IvfConfig config_;
  Tensor vectors_;
  Tensor centroids_;  // [nlist, d]
  std::vector<std::vector<int64_t>> lists_;
};

/// Measured recall of `index` against an exact scan over `queries` rows.
double MeasureRecallAtK(const Index& index, const BruteForceIndex& exact,
                        const Tensor& queries, int k);

}  // namespace unimatch::ann

#endif  // UNIMATCH_ANN_INDEX_H_
