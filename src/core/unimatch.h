// UniMatchEngine: the public facade of the library.
//
// One engine = one trained model serving BOTH marketing tasks, which is the
// paper's core value proposition: feed it an interaction log, call Fit()
// once, then ask for item recommendations (IR) and user-targeting lists (UT)
// from the same embeddings.
//
//   unimatch::core::EngineConfig config;
//   unimatch::core::UniMatchEngine engine(config);
//   UM_CHECK(engine.Fit(log).ok());
//   auto items = engine.RecommendItems(user_id, 10);     // IR
//   auto users = engine.TargetUsers(item_id, 10);        // UT

#ifndef UNIMATCH_CORE_UNIMATCH_H_
#define UNIMATCH_CORE_UNIMATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ann/hnsw.h"
#include "src/ann/index.h"
#include "src/ann/pq.h"
#include "src/data/splits.h"
#include "src/model/two_tower.h"
#include "src/train/trainer.h"
#include "src/util/status.h"

namespace unimatch::core {

struct EngineConfig {
  /// Model architecture (num_items is filled in from the log at Fit time).
  model::TwoTowerConfig model;
  /// Training schedule & loss (default: bbcNCE, the paper's choice).
  train::TrainConfig train;
  /// Windowing & filtering.
  data::SplitConfig split;
  /// Serving index: "brute_force" (exact), "ivf" / "hnsw" (approximate,
  /// float storage), "ivfpq" (product-quantized IVF) or "hnsw_q"
  /// (HNSW over int8 rows; `hnsw` settings apply, storage forced to kI8).
  std::string index = "brute_force";
  ann::IvfConfig ivf;
  ann::HnswConfig hnsw;
  ann::IvfPqConfig ivfpq;
};

/// A scored recommendation/targeting entry.
struct Scored {
  int64_t id = -1;
  float score = 0.0f;
};

class UniMatchEngine {
 public:
  explicit UniMatchEngine(EngineConfig config);
  ~UniMatchEngine();

  /// Builds splits from the log, trains incrementally over all training
  /// months with the configured loss, exports embeddings and builds the
  /// serving indexes. May be called once per engine.
  Status Fit(const data::InteractionLog& log);

  /// Continues incremental training with one more month of data (the
  /// production pattern: call monthly with the refreshed log).
  Status FitIncrementalMonth(const data::InteractionLog& log, int32_t month);

  /// IR for a known user id (history taken from the fitted log).
  Result<std::vector<Scored>> RecommendItems(data::UserId user, int n) const;

  /// IR for an ad-hoc behavior sequence (anonymous / cold-start flows).
  Result<std::vector<Scored>> RecommendItemsForHistory(
      const std::vector<data::ItemId>& history, int n) const;

  /// UT: most-likely future buyers of an item, over all known users.
  Result<std::vector<Scored>> TargetUsers(data::ItemId item, int n) const;

  /// Checkpointing of the underlying model parameters.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

  bool fitted() const { return fitted_; }
  const model::TwoTowerModel* model() const { return model_.get(); }
  const data::DatasetSplits* splits() const {
    return fitted_ ? &splits_ : nullptr;
  }

  /// Normalized embedding matrices (valid after Fit).
  const Tensor& item_embeddings() const { return item_embeddings_; }
  const Tensor& user_embeddings() const { return user_embeddings_; }

  /// A fresh, empty index of the configured kind (`EngineConfig::index`).
  /// Snapshot construction (serving::EngineSnapshot) uses this to build
  /// indexes it owns independently of the engine's own serving indexes,
  /// so a later FitIncrementalMonth cannot invalidate a published snapshot.
  std::unique_ptr<ann::Index> MakeConfiguredIndex() const;

 private:
  Status RebuildIndexes();

  EngineConfig config_;
  bool fitted_ = false;
  data::DatasetSplits splits_;
  std::unique_ptr<model::TwoTowerModel> model_;
  std::unique_ptr<train::Trainer> trainer_;
  Tensor item_embeddings_;
  Tensor user_embeddings_;
  std::unique_ptr<ann::Index> item_index_;
  std::unique_ptr<ann::Index> user_index_;
};

}  // namespace unimatch::core

#endif  // UNIMATCH_CORE_UNIMATCH_H_
