#include "src/core/unimatch.h"

#include "src/nn/serialize.h"
#include "src/obs/obs.h"
#include "src/util/logging.h"

namespace unimatch::core {

UniMatchEngine::UniMatchEngine(EngineConfig config)
    : config_(std::move(config)) {}

UniMatchEngine::~UniMatchEngine() = default;

std::unique_ptr<ann::Index> UniMatchEngine::MakeConfiguredIndex() const {
  if (config_.index == "ivf") {
    return std::make_unique<ann::IvfIndex>(config_.ivf);
  }
  if (config_.index == "hnsw") {
    return std::make_unique<ann::HnswIndex>(config_.hnsw);
  }
  if (config_.index == "ivfpq") {
    return std::make_unique<ann::IvfPqIndex>(config_.ivfpq);
  }
  if (config_.index == "hnsw_q") {
    ann::HnswConfig quantized = config_.hnsw;
    quantized.storage = ScalarType::kI8;
    return std::make_unique<ann::HnswIndex>(quantized);
  }
  // Fit() already rejected anything but the known index kinds.
  UM_CHECK(config_.index == "brute_force");
  return std::make_unique<ann::BruteForceIndex>();
}

Status UniMatchEngine::Fit(const data::InteractionLog& log) {
  if (fitted_) {
    return Status::FailedPrecondition("engine already fitted");
  }
  if (config_.index != "brute_force" && config_.index != "ivf" &&
      config_.index != "hnsw" && config_.index != "ivfpq" &&
      config_.index != "hnsw_q") {
    // Fail loudly up front: a typo like "bruteforce" used to silently fall
    // back to the exact index and masked the intended configuration.
    return Status::InvalidArgument(
        "unknown EngineConfig::index \"" + config_.index +
        "\" (expected brute_force, ivf, hnsw, ivfpq, or hnsw_q)");
  }
  if (log.empty()) return Status::InvalidArgument("empty interaction log");
  if (log.NumMonths() < 3) {
    return Status::InvalidArgument(
        "log must span at least 3 months for a train/valid/test split");
  }
  splits_ = data::MakeSplits(log, config_.split);
  if (splits_.train.empty()) {
    return Status::InvalidArgument("no training samples after windowing");
  }
  model::TwoTowerConfig mc = config_.model;
  mc.num_items = log.num_items();
  model_ = std::make_unique<model::TwoTowerModel>(mc);
  trainer_ = std::make_unique<train::Trainer>(model_.get(), &splits_,
                                              config_.train);
  UNIMATCH_RETURN_IF_ERROR(trainer_->TrainMonths(0, splits_.test_month - 1));
  fitted_ = true;
  return RebuildIndexes();
}

Status UniMatchEngine::FitIncrementalMonth(const data::InteractionLog& log,
                                           int32_t month) {
  if (!fitted_) return Status::FailedPrecondition("call Fit first");
  if (log.num_items() != model_->config().num_items) {
    return Status::InvalidArgument("item catalog size changed");
  }
  splits_ = data::MakeSplits(log, config_.split);
  trainer_ = std::make_unique<train::Trainer>(model_.get(), &splits_,
                                              config_.train);
  UNIMATCH_RETURN_IF_ERROR(trainer_->TrainMonth(month));
  return RebuildIndexes();
}

Status UniMatchEngine::RebuildIndexes() {
  UM_SCOPED_TIMER("core.index.rebuild.ms");
  UM_COUNTER_INC("core.index.rebuilds");
  item_embeddings_ = model_->InferItemEmbeddings();
  std::vector<std::vector<int64_t>> histories(splits_.histories.begin(),
                                              splits_.histories.end());
  user_embeddings_ = model_->InferUserEmbeddings(histories);
  item_index_ = MakeConfiguredIndex();
  user_index_ = MakeConfiguredIndex();
  UNIMATCH_RETURN_IF_ERROR(item_index_->Build(item_embeddings_));
  UNIMATCH_RETURN_IF_ERROR(user_index_->Build(user_embeddings_));
  return Status::OK();
}

Result<std::vector<Scored>> UniMatchEngine::RecommendItems(data::UserId user,
                                                           int n) const {
  if (!fitted_) return Status::FailedPrecondition("engine not fitted");
  if (user < 0 || user >= static_cast<data::UserId>(splits_.histories.size())) {
    return Status::NotFound("unknown user id");
  }
  if (splits_.histories[user].empty()) {
    return Status::NotFound("user has no interaction history");
  }
  UM_SCOPED_TIMER("core.recommend.ms");
  UM_COUNTER_INC("core.recommend.calls");
  const int64_t d = model_->config().embedding_dim;
  const float* uvec = user_embeddings_.data() + user * d;
  std::vector<Scored> out;
  for (const auto& r : item_index_->Search(uvec, n)) {
    out.push_back({r.id, r.score});
  }
  return out;
}

Result<std::vector<Scored>> UniMatchEngine::RecommendItemsForHistory(
    const std::vector<data::ItemId>& history, int n) const {
  if (!fitted_) return Status::FailedPrecondition("engine not fitted");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  for (auto i : history) {
    if (i < 0 || i >= model_->config().num_items) {
      return Status::InvalidArgument("history contains unknown item id");
    }
  }
  const Tensor emb = model_->InferUserEmbeddings({history});
  std::vector<Scored> out;
  for (const auto& r : item_index_->Search(emb.data(), n)) {
    out.push_back({r.id, r.score});
  }
  return out;
}

Result<std::vector<Scored>> UniMatchEngine::TargetUsers(data::ItemId item,
                                                        int n) const {
  if (!fitted_) return Status::FailedPrecondition("engine not fitted");
  if (item < 0 || item >= model_->config().num_items) {
    return Status::NotFound("unknown item id");
  }
  UM_SCOPED_TIMER("core.target.ms");
  UM_COUNTER_INC("core.target.calls");
  const int64_t d = model_->config().embedding_dim;
  const float* ivec = item_embeddings_.data() + item * d;
  std::vector<Scored> out;
  for (const auto& r : user_index_->Search(ivec, n)) {
    out.push_back({r.id, r.score});
  }
  return out;
}

Status UniMatchEngine::SaveCheckpoint(const std::string& path) const {
  if (!fitted_) return Status::FailedPrecondition("engine not fitted");
  return nn::SaveParameters(model_->Parameters(), path);
}

Status UniMatchEngine::LoadCheckpoint(const std::string& path) {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "call Fit first (the model architecture comes from the log)");
  }
  auto params = model_->Parameters();
  UNIMATCH_RETURN_IF_ERROR(nn::LoadParameters(path, &params));
  return RebuildIndexes();
}

}  // namespace unimatch::core
