# Empty compiler generated dependencies file for unimatch_tests.
# This may be replaced when dependencies are built.
