
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ann/hnsw_test.cc" "tests/CMakeFiles/unimatch_tests.dir/ann/hnsw_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/ann/hnsw_test.cc.o.d"
  "/root/repo/tests/ann/index_test.cc" "tests/CMakeFiles/unimatch_tests.dir/ann/index_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/ann/index_test.cc.o.d"
  "/root/repo/tests/baselines/baselines_test.cc" "tests/CMakeFiles/unimatch_tests.dir/baselines/baselines_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/baselines/baselines_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/unimatch_tests.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/data/batcher_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/batcher_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/batcher_test.cc.o.d"
  "/root/repo/tests/data/csv_loader_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/csv_loader_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/csv_loader_test.cc.o.d"
  "/root/repo/tests/data/dataset_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/dataset_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/dataset_test.cc.o.d"
  "/root/repo/tests/data/event_log_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/event_log_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/event_log_test.cc.o.d"
  "/root/repo/tests/data/marginals_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/marginals_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/marginals_test.cc.o.d"
  "/root/repo/tests/data/negative_sampler_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/negative_sampler_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/negative_sampler_test.cc.o.d"
  "/root/repo/tests/data/splits_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/splits_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/splits_test.cc.o.d"
  "/root/repo/tests/data/synthetic_test.cc" "tests/CMakeFiles/unimatch_tests.dir/data/synthetic_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/data/synthetic_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/unimatch_tests.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/eval/metrics_test.cc.o.d"
  "/root/repo/tests/eval/popularity_test.cc" "tests/CMakeFiles/unimatch_tests.dir/eval/popularity_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/eval/popularity_test.cc.o.d"
  "/root/repo/tests/eval/protocol_test.cc" "tests/CMakeFiles/unimatch_tests.dir/eval/protocol_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/eval/protocol_test.cc.o.d"
  "/root/repo/tests/integration/paper_shapes_test.cc" "tests/CMakeFiles/unimatch_tests.dir/integration/paper_shapes_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/integration/paper_shapes_test.cc.o.d"
  "/root/repo/tests/loss/losses_test.cc" "tests/CMakeFiles/unimatch_tests.dir/loss/losses_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/loss/losses_test.cc.o.d"
  "/root/repo/tests/loss/optima_test.cc" "tests/CMakeFiles/unimatch_tests.dir/loss/optima_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/loss/optima_test.cc.o.d"
  "/root/repo/tests/model/model_options_test.cc" "tests/CMakeFiles/unimatch_tests.dir/model/model_options_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/model/model_options_test.cc.o.d"
  "/root/repo/tests/model/two_tower_test.cc" "tests/CMakeFiles/unimatch_tests.dir/model/two_tower_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/model/two_tower_test.cc.o.d"
  "/root/repo/tests/nn/autograd_test.cc" "tests/CMakeFiles/unimatch_tests.dir/nn/autograd_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/nn/autograd_test.cc.o.d"
  "/root/repo/tests/nn/dropout_test.cc" "tests/CMakeFiles/unimatch_tests.dir/nn/dropout_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/nn/dropout_test.cc.o.d"
  "/root/repo/tests/nn/gradcheck_ops_test.cc" "tests/CMakeFiles/unimatch_tests.dir/nn/gradcheck_ops_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/nn/gradcheck_ops_test.cc.o.d"
  "/root/repo/tests/nn/gradcheck_seq_test.cc" "tests/CMakeFiles/unimatch_tests.dir/nn/gradcheck_seq_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/nn/gradcheck_seq_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_test.cc" "tests/CMakeFiles/unimatch_tests.dir/nn/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/nn/optimizer_test.cc.o.d"
  "/root/repo/tests/nn/serialize_test.cc" "tests/CMakeFiles/unimatch_tests.dir/nn/serialize_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/nn/serialize_test.cc.o.d"
  "/root/repo/tests/serving/serving_test.cc" "tests/CMakeFiles/unimatch_tests.dir/serving/serving_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/serving/serving_test.cc.o.d"
  "/root/repo/tests/tensor/tensor_ops_test.cc" "tests/CMakeFiles/unimatch_tests.dir/tensor/tensor_ops_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/tensor/tensor_ops_test.cc.o.d"
  "/root/repo/tests/tensor/tensor_test.cc" "tests/CMakeFiles/unimatch_tests.dir/tensor/tensor_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/tensor/tensor_test.cc.o.d"
  "/root/repo/tests/train/early_stopping_test.cc" "tests/CMakeFiles/unimatch_tests.dir/train/early_stopping_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/train/early_stopping_test.cc.o.d"
  "/root/repo/tests/train/incremental_test.cc" "tests/CMakeFiles/unimatch_tests.dir/train/incremental_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/train/incremental_test.cc.o.d"
  "/root/repo/tests/train/trainer_test.cc" "tests/CMakeFiles/unimatch_tests.dir/train/trainer_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/train/trainer_test.cc.o.d"
  "/root/repo/tests/util/flags_test.cc" "tests/CMakeFiles/unimatch_tests.dir/util/flags_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/util/flags_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/unimatch_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/unimatch_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/string_util_test.cc" "tests/CMakeFiles/unimatch_tests.dir/util/string_util_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/util/string_util_test.cc.o.d"
  "/root/repo/tests/util/table_printer_test.cc" "tests/CMakeFiles/unimatch_tests.dir/util/table_printer_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/util/table_printer_test.cc.o.d"
  "/root/repo/tests/util/threadpool_test.cc" "tests/CMakeFiles/unimatch_tests.dir/util/threadpool_test.cc.o" "gcc" "tests/CMakeFiles/unimatch_tests.dir/util/threadpool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/unimatch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
