# Empty compiler generated dependencies file for unimatch.
# This may be replaced when dependencies are built.
