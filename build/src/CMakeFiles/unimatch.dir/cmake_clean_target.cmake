file(REMOVE_RECURSE
  "libunimatch.a"
)
