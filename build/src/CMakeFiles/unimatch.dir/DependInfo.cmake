
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ann/hnsw.cc" "src/CMakeFiles/unimatch.dir/ann/hnsw.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/ann/hnsw.cc.o.d"
  "/root/repo/src/ann/index.cc" "src/CMakeFiles/unimatch.dir/ann/index.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/ann/index.cc.o.d"
  "/root/repo/src/baselines/item_knn.cc" "src/CMakeFiles/unimatch.dir/baselines/item_knn.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/baselines/item_knn.cc.o.d"
  "/root/repo/src/baselines/mf.cc" "src/CMakeFiles/unimatch.dir/baselines/mf.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/baselines/mf.cc.o.d"
  "/root/repo/src/baselines/popularity.cc" "src/CMakeFiles/unimatch.dir/baselines/popularity.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/baselines/popularity.cc.o.d"
  "/root/repo/src/core/unimatch.cc" "src/CMakeFiles/unimatch.dir/core/unimatch.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/core/unimatch.cc.o.d"
  "/root/repo/src/data/batcher.cc" "src/CMakeFiles/unimatch.dir/data/batcher.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/batcher.cc.o.d"
  "/root/repo/src/data/csv_loader.cc" "src/CMakeFiles/unimatch.dir/data/csv_loader.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/csv_loader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/unimatch.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/event_log.cc" "src/CMakeFiles/unimatch.dir/data/event_log.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/event_log.cc.o.d"
  "/root/repo/src/data/id_map.cc" "src/CMakeFiles/unimatch.dir/data/id_map.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/id_map.cc.o.d"
  "/root/repo/src/data/marginals.cc" "src/CMakeFiles/unimatch.dir/data/marginals.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/marginals.cc.o.d"
  "/root/repo/src/data/negative_sampler.cc" "src/CMakeFiles/unimatch.dir/data/negative_sampler.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/negative_sampler.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/CMakeFiles/unimatch.dir/data/splits.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/splits.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/unimatch.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/data/synthetic.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/unimatch.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/unimatch.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/popularity.cc" "src/CMakeFiles/unimatch.dir/eval/popularity.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/eval/popularity.cc.o.d"
  "/root/repo/src/eval/protocol.cc" "src/CMakeFiles/unimatch.dir/eval/protocol.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/eval/protocol.cc.o.d"
  "/root/repo/src/loss/losses.cc" "src/CMakeFiles/unimatch.dir/loss/losses.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/loss/losses.cc.o.d"
  "/root/repo/src/loss/tabular_study.cc" "src/CMakeFiles/unimatch.dir/loss/tabular_study.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/loss/tabular_study.cc.o.d"
  "/root/repo/src/model/two_tower.cc" "src/CMakeFiles/unimatch.dir/model/two_tower.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/model/two_tower.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/unimatch.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/unimatch.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/unimatch.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/unimatch.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/CMakeFiles/unimatch.dir/nn/ops.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/unimatch.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/CMakeFiles/unimatch.dir/nn/rnn.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/rnn.cc.o.d"
  "/root/repo/src/nn/seq_ops.cc" "src/CMakeFiles/unimatch.dir/nn/seq_ops.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/seq_ops.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/unimatch.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/variable.cc" "src/CMakeFiles/unimatch.dir/nn/variable.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/nn/variable.cc.o.d"
  "/root/repo/src/serving/campaign.cc" "src/CMakeFiles/unimatch.dir/serving/campaign.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/serving/campaign.cc.o.d"
  "/root/repo/src/serving/embedding_store.cc" "src/CMakeFiles/unimatch.dir/serving/embedding_store.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/serving/embedding_store.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/unimatch.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/CMakeFiles/unimatch.dir/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/tensor/tensor_ops.cc.o.d"
  "/root/repo/src/train/grid_search.cc" "src/CMakeFiles/unimatch.dir/train/grid_search.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/train/grid_search.cc.o.d"
  "/root/repo/src/train/incremental_study.cc" "src/CMakeFiles/unimatch.dir/train/incremental_study.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/train/incremental_study.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/unimatch.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/train/trainer.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/unimatch.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/unimatch.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/unimatch.dir/util/random.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/unimatch.dir/util/status.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/unimatch.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/unimatch.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/threadpool.cc" "src/CMakeFiles/unimatch.dir/util/threadpool.cc.o" "gcc" "src/CMakeFiles/unimatch.dir/util/threadpool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
