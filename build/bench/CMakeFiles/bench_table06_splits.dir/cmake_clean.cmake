file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_splits.dir/bench_table06_splits.cc.o"
  "CMakeFiles/bench_table06_splits.dir/bench_table06_splits.cc.o.d"
  "bench_table06_splits"
  "bench_table06_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
