# Empty compiler generated dependencies file for bench_table02_nce_optima.
# This may be replaced when dependencies are built.
