file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_nce_optima.dir/bench_table02_nce_optima.cc.o"
  "CMakeFiles/bench_table02_nce_optima.dir/bench_table02_nce_optima.cc.o.d"
  "bench_table02_nce_optima"
  "bench_table02_nce_optima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_nce_optima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
