# Empty compiler generated dependencies file for bench_cost_saving.
# This may be replaced when dependencies are built.
