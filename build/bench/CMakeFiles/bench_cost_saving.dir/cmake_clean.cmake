file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_saving.dir/bench_cost_saving.cc.o"
  "CMakeFiles/bench_cost_saving.dir/bench_cost_saving.cc.o.d"
  "bench_cost_saving"
  "bench_cost_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
