# Empty compiler generated dependencies file for bench_cold_items.
# This may be replaced when dependencies are built.
