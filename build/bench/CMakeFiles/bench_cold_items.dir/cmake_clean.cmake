file(REMOVE_RECURSE
  "CMakeFiles/bench_cold_items.dir/bench_cold_items.cc.o"
  "CMakeFiles/bench_cold_items.dir/bench_cold_items.cc.o.d"
  "bench_cold_items"
  "bench_cold_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cold_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
