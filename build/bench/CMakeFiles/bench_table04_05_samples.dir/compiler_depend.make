# Empty compiler generated dependencies file for bench_table04_05_samples.
# This may be replaced when dependencies are built.
