file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_05_samples.dir/bench_table04_05_samples.cc.o"
  "CMakeFiles/bench_table04_05_samples.dir/bench_table04_05_samples.cc.o.d"
  "bench_table04_05_samples"
  "bench_table04_05_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_05_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
