file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_losses_qa.dir/bench_table10_losses_qa.cc.o"
  "CMakeFiles/bench_table10_losses_qa.dir/bench_table10_losses_qa.cc.o.d"
  "bench_table10_losses_qa"
  "bench_table10_losses_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_losses_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
