# Empty compiler generated dependencies file for bench_table10_losses_qa.
# This may be replaced when dependencies are built.
