file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_incremental.dir/bench_fig3_incremental.cc.o"
  "CMakeFiles/bench_fig3_incremental.dir/bench_fig3_incremental.cc.o.d"
  "bench_fig3_incremental"
  "bench_fig3_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
