file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_grid.dir/bench_table07_grid.cc.o"
  "CMakeFiles/bench_table07_grid.dir/bench_table07_grid.cc.o.d"
  "bench_table07_grid"
  "bench_table07_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
