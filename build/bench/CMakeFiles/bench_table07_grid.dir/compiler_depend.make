# Empty compiler generated dependencies file for bench_table07_grid.
# This may be replaced when dependencies are built.
