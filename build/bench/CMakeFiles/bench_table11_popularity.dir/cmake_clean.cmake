file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_popularity.dir/bench_table11_popularity.cc.o"
  "CMakeFiles/bench_table11_popularity.dir/bench_table11_popularity.cc.o.d"
  "bench_table11_popularity"
  "bench_table11_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
