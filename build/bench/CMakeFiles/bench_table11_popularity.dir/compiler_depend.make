# Empty compiler generated dependencies file for bench_table11_popularity.
# This may be replaced when dependencies are built.
