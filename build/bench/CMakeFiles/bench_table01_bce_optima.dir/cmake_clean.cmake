file(REMOVE_RECURSE
  "CMakeFiles/bench_table01_bce_optima.dir/bench_table01_bce_optima.cc.o"
  "CMakeFiles/bench_table01_bce_optima.dir/bench_table01_bce_optima.cc.o.d"
  "bench_table01_bce_optima"
  "bench_table01_bce_optima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_bce_optima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
