# Empty compiler generated dependencies file for bench_table01_bce_optima.
# This may be replaced when dependencies are built.
