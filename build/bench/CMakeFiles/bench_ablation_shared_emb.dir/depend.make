# Empty dependencies file for bench_ablation_shared_emb.
# This may be replaced when dependencies are built.
