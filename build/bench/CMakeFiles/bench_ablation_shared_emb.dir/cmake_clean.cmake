file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared_emb.dir/bench_ablation_shared_emb.cc.o"
  "CMakeFiles/bench_ablation_shared_emb.dir/bench_ablation_shared_emb.cc.o.d"
  "bench_ablation_shared_emb"
  "bench_ablation_shared_emb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_emb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
