# Empty dependencies file for bench_table12_model_agnostic.
# This may be replaced when dependencies are built.
