file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_datasets.dir/bench_table03_datasets.cc.o"
  "CMakeFiles/bench_table03_datasets.dir/bench_table03_datasets.cc.o.d"
  "bench_table03_datasets"
  "bench_table03_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
