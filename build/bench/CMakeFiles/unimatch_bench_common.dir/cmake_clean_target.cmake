file(REMOVE_RECURSE
  "libunimatch_bench_common.a"
)
