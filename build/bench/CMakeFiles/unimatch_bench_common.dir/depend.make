# Empty dependencies file for unimatch_bench_common.
# This may be replaced when dependencies are built.
