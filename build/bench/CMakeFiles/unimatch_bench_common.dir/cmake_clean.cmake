file(REMOVE_RECURSE
  "CMakeFiles/unimatch_bench_common.dir/common.cc.o"
  "CMakeFiles/unimatch_bench_common.dir/common.cc.o.d"
  "libunimatch_bench_common.a"
  "libunimatch_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unimatch_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
