file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_l2norm.dir/bench_ablation_l2norm.cc.o"
  "CMakeFiles/bench_ablation_l2norm.dir/bench_ablation_l2norm.cc.o.d"
  "bench_ablation_l2norm"
  "bench_ablation_l2norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_l2norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
