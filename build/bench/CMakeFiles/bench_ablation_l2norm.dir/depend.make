# Empty dependencies file for bench_ablation_l2norm.
# This may be replaced when dependencies are built.
