file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_bce_vs_bbcnce.dir/bench_table08_bce_vs_bbcnce.cc.o"
  "CMakeFiles/bench_table08_bce_vs_bbcnce.dir/bench_table08_bce_vs_bbcnce.cc.o.d"
  "bench_table08_bce_vs_bbcnce"
  "bench_table08_bce_vs_bbcnce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_bce_vs_bbcnce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
