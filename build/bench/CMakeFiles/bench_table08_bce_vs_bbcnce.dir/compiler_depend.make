# Empty compiler generated dependencies file for bench_table08_bce_vs_bbcnce.
# This may be replaced when dependencies are built.
