# Empty dependencies file for bench_table09_losses_amazon.
# This may be replaced when dependencies are built.
