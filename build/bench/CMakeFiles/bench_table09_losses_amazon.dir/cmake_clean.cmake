file(REMOVE_RECURSE
  "CMakeFiles/bench_table09_losses_amazon.dir/bench_table09_losses_amazon.cc.o"
  "CMakeFiles/bench_table09_losses_amazon.dir/bench_table09_losses_amazon.cc.o.d"
  "bench_table09_losses_amazon"
  "bench_table09_losses_amazon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table09_losses_amazon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
