# Empty compiler generated dependencies file for bench_incremental_vs_scratch.
# This may be replaced when dependencies are built.
