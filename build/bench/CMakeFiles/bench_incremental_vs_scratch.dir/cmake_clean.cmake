file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_vs_scratch.dir/bench_incremental_vs_scratch.cc.o"
  "CMakeFiles/bench_incremental_vs_scratch.dir/bench_incremental_vs_scratch.cc.o.d"
  "bench_incremental_vs_scratch"
  "bench_incremental_vs_scratch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_vs_scratch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
