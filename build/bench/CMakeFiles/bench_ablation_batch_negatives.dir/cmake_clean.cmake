file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_batch_negatives.dir/bench_ablation_batch_negatives.cc.o"
  "CMakeFiles/bench_ablation_batch_negatives.dir/bench_ablation_batch_negatives.cc.o.d"
  "bench_ablation_batch_negatives"
  "bench_ablation_batch_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batch_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
