# Empty dependencies file for bench_ablation_batch_negatives.
# This may be replaced when dependencies are built.
