# Empty dependencies file for example_merchant_campaign.
# This may be replaced when dependencies are built.
