file(REMOVE_RECURSE
  "CMakeFiles/example_merchant_campaign.dir/merchant_campaign.cpp.o"
  "CMakeFiles/example_merchant_campaign.dir/merchant_campaign.cpp.o.d"
  "example_merchant_campaign"
  "example_merchant_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_merchant_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
