# Empty dependencies file for example_ann_serving.
# This may be replaced when dependencies are built.
