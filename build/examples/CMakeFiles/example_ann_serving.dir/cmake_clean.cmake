file(REMOVE_RECURSE
  "CMakeFiles/example_ann_serving.dir/ann_serving.cpp.o"
  "CMakeFiles/example_ann_serving.dir/ann_serving.cpp.o.d"
  "example_ann_serving"
  "example_ann_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ann_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
