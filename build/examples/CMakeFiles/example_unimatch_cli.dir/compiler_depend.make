# Empty compiler generated dependencies file for example_unimatch_cli.
# This may be replaced when dependencies are built.
