file(REMOVE_RECURSE
  "CMakeFiles/example_unimatch_cli.dir/unimatch_cli.cpp.o"
  "CMakeFiles/example_unimatch_cli.dir/unimatch_cli.cpp.o.d"
  "example_unimatch_cli"
  "example_unimatch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_unimatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
