file(REMOVE_RECURSE
  "CMakeFiles/example_loss_playground.dir/loss_playground.cpp.o"
  "CMakeFiles/example_loss_playground.dir/loss_playground.cpp.o.d"
  "example_loss_playground"
  "example_loss_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_loss_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
