# Empty dependencies file for example_loss_playground.
# This may be replaced when dependencies are built.
